//! Calibration-snapshot smoke check: save → load must round-trip
//! bit-exactly, and the integrity gates (schema version, technology
//! fingerprint) must reject tampered files.
//!
//! Run by CI after the test suite; exits nonzero (via panic) on any
//! violation, so a broken snapshot format can never silently ship.
//!
//! ```bash
//! cargo run --release --bin snapshot_roundtrip
//! ```

use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_core::snapshot;
use optima_core::ModelError;
use optima_math::units::Volts;
use std::time::Instant;

fn main() {
    let technology = Technology::tsmc65_like();
    let config = CalibrationConfig::fast();

    let calibrate_start = Instant::now();
    let outcome = Calibrator::new(technology.clone(), config.clone())
        .run()
        .expect("calibration succeeds");
    let calibrate_seconds = calibrate_start.elapsed().as_secs_f64();

    let dir = std::env::temp_dir().join(format!("optima-snapshot-smoke-{}", std::process::id()));
    let path = dir.join("calibration-fast.v1.snap");

    snapshot::save(&path, &outcome, &technology, &config).expect("snapshot save succeeds");
    let load_start = Instant::now();
    let loaded = snapshot::load(&path, &technology, &config).expect("snapshot load succeeds");
    let load_seconds = load_start.elapsed().as_secs_f64();
    assert_eq!(outcome, loaded, "snapshot round trip must be bit-exact");

    // Integrity gates: a different technology must be rejected...
    let mut other_tech = technology.clone();
    other_tech.nmos_vth = Volts(other_tech.nmos_vth.0 + 0.01);
    match snapshot::load(&path, &other_tech, &config) {
        Err(ModelError::SnapshotFingerprintMismatch { .. }) => {}
        other => panic!("expected a technology-fingerprint rejection, got {other:?}"),
    }
    // ...and so must a different calibration grid.
    match snapshot::load(&path, &technology, &CalibrationConfig::default()) {
        Err(ModelError::SnapshotFingerprintMismatch { .. }) => {}
        other => panic!("expected a config-fingerprint rejection, got {other:?}"),
    }
    // A truncated file is corruption, not a mis-parse.
    let body = std::fs::read_to_string(&path).expect("snapshot is readable");
    let truncated = dir.join("truncated.snap");
    std::fs::write(&truncated, &body[..body.len() / 2]).expect("temp dir is writable");
    match snapshot::load(&truncated, &technology, &config) {
        Err(ModelError::SnapshotCorrupt { .. }) => {}
        other => panic!("expected a corruption rejection, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();

    println!("calibration snapshot round trip OK (bit-exact)");
    println!("  calibrate: {calibrate_seconds:.3} s");
    println!(
        "  load:      {load_seconds:.6} s  ({:.0}x faster)",
        calibrate_seconds / load_seconds.max(1e-9)
    );
    println!("  rejected: wrong technology, wrong config grid, truncated file");
}
