//! Legacy shim: runs the registered `snapshot_roundtrip` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run snapshot_roundtrip` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("snapshot_roundtrip");
}
