//! Section V speed-up claim — OPTIMA models vs. circuit simulation.
//!
//! The paper reports a ~101× speed-up for iterating over the input space and
//! design corners and 28.1× for mismatch Monte Carlo sampling compared to
//! Cadence Virtuoso.  Here the comparison is against our own ODE-based golden
//! reference, so the absolute factor differs, but the same mechanism (cheap
//! polynomial evaluation replacing transient integration) is measured.

use optima_bench::{calibrated_models, print_header, print_row, quick_mode};
use optima_core::evaluation::ModelEvaluator;
use optima_core::sweep::default_threads;

fn main() {
    let fast = quick_mode();
    // Starts from the persistent calibration snapshot when one exists — the
    // expensive circuit sweeps only run on a cold cache.
    let (technology, models) = calibrated_models(fast);
    // The circuit-reference side of both measurements fans out over the
    // sweep engine (thread count 0 = automatic), so the reported factor is
    // the wall-clock advantage over the *parallel* golden reference.  Both
    // sides answer the identical DischargeBackend waveform queries.
    let evaluator = ModelEvaluator::new(technology, models)
        .with_threads(0)
        .with_reference_time_steps(if fast { 150 } else { 400 });

    let (wordlines, times, mc) = if fast { (8, 8, 50) } else { (16, 16, 300) };
    let sweep = evaluator
        .measure_speedup(wordlines, times)
        .expect("speed-up measurement succeeds");
    let monte_carlo = evaluator
        .measure_monte_carlo_speedup(mc)
        .expect("monte carlo speed-up measurement succeeds");

    println!("# Section V — simulation speed-up of OPTIMA vs. circuit simulation");
    println!(
        "(backends '{}' vs '{}', one DischargeBackend interface; \
         circuit reference parallelised over {} sweep-engine threads)\n",
        evaluator.reference_backend().backend_name(),
        evaluator.fitted_backend().backend_name(),
        default_threads()
    );
    print_header(&[
        "Workload",
        "Circuit sim [s]",
        "OPTIMA [s]",
        "Speed-up",
        "Paper",
    ]);
    print_row(&[
        format!("input-space sweep ({} points)", sweep.evaluations),
        format!("{:.4}", sweep.circuit_seconds),
        format!("{:.6}", sweep.model_seconds),
        format!("{:.0}x", sweep.speedup()),
        "~101x".into(),
    ]);
    print_row(&[
        format!("mismatch Monte Carlo ({} samples)", monte_carlo.evaluations),
        format!("{:.4}", monte_carlo.circuit_seconds),
        format!("{:.6}", monte_carlo.model_seconds),
        format!("{:.0}x", monte_carlo.speedup()),
        "28.1x".into(),
    ]);
}
