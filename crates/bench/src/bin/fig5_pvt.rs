//! Fig. 5 — influence of PVT variations on the BLB discharge.
//!
//! (a) supply voltage, (b) temperature, (c) process corners,
//! (d) transistor mismatch (Monte Carlo).
//!
//! All four sweeps run on the error-strict parallel engine of
//! [`optima_core::sweep`]; a failing condition aborts the run naming the
//! condition instead of silently thinning the tables.

use optima_bench::{print_header, print_row, quick_mode};
use optima_circuit::montecarlo::MismatchModel;
use optima_circuit::prelude::*;
use optima_circuit::CircuitError;
use optima_core::sweep::{default_threads, par_map_sweep};
use optima_math::stats;

fn waveform_at(
    sim: &TransientSimulator,
    v_wl: f64,
    pvt: &PvtConditions,
    mismatch: &MismatchSample,
    steps: usize,
) -> Result<Waveform, CircuitError> {
    sim.discharge_waveform(
        &DischargeStimulus {
            word_line_voltage: Volts(v_wl),
            duration: Seconds(2e-9),
            time_steps: steps,
            ..DischargeStimulus::default()
        },
        pvt,
        mismatch,
    )
}

fn main() {
    let tech = Technology::tsmc65_like();
    let sim = TransientSimulator::new(tech.clone());
    let nominal = PvtConditions::nominal(&tech);
    let steps = if quick_mode() { 100 } else { 400 };
    let mc_samples = if quick_mode() { 100 } else { 1000 };
    let v_wl = 0.85;
    let sample_times = [0.5e-9, 1.0e-9, 1.5e-9, 2.0e-9];
    println!(
        "(sweep engine: {} worker threads, results deterministic at any count)\n",
        default_threads()
    );

    println!("# Fig. 5a — supply voltage (V_BL [V] at V_WL = {v_wl} V)\n");
    print_header(&["t [ns]", "VDD=0.9 V", "VDD=1.0 V", "VDD=1.1 V"]);
    let supply_points = [0.9, 1.0, 1.1];
    let supply_waveforms = par_map_sweep(&supply_points, 0, |_, &vdd| {
        waveform_at(
            &sim,
            v_wl,
            &nominal.with_vdd(Volts(vdd)),
            &MismatchSample::none(),
            steps,
        )
    })
    .expect("supply sweep succeeds");
    for &t in &sample_times {
        let mut row = vec![format!("{:.1}", t * 1e9)];
        for waveform in &supply_waveforms {
            row.push(format!("{:.4}", waveform.sample_at(Seconds(t)).unwrap().0));
        }
        print_row(&row);
    }

    println!("\n# Fig. 5b — temperature\n");
    print_header(&["t [ns]", "-40 degC", "25 degC", "125 degC"]);
    let temp_points = [-40.0, 25.0, 125.0];
    let temp_waveforms = par_map_sweep(&temp_points, 0, |_, &temp| {
        waveform_at(
            &sim,
            v_wl,
            &nominal.with_temperature(Celsius(temp)),
            &MismatchSample::none(),
            steps,
        )
    })
    .expect("temperature sweep succeeds");
    for &t in &sample_times {
        let mut row = vec![format!("{:.1}", t * 1e9)];
        for waveform in &temp_waveforms {
            row.push(format!("{:.4}", waveform.sample_at(Seconds(t)).unwrap().0));
        }
        print_row(&row);
    }

    println!("\n# Fig. 5c — process corners\n");
    print_header(&["t [ns]", "fast (FF)", "nominal (TT)", "slow (SS)"]);
    let corner_points = [
        ProcessCorner::FastFast,
        ProcessCorner::TypicalTypical,
        ProcessCorner::SlowSlow,
    ];
    let corner_waveforms = par_map_sweep(&corner_points, 0, |_, &corner| {
        waveform_at(
            &sim,
            v_wl,
            &nominal.with_corner(corner),
            &MismatchSample::none(),
            steps,
        )
    })
    .expect("process-corner sweep succeeds");
    for &t in &sample_times {
        let mut row = vec![format!("{:.1}", t * 1e9)];
        for waveform in &corner_waveforms {
            row.push(format!("{:.4}", waveform.sample_at(Seconds(t)).unwrap().0));
        }
        print_row(&row);
    }

    println!("\n# Fig. 5d — transistor mismatch ({mc_samples} samples)\n");
    print_header(&[
        "V_WL [V]",
        "mean V_BL(2 ns) [V]",
        "sigma [mV]",
        "min [V]",
        "max [V]",
    ]);
    let mismatch_model = MismatchModel::from_technology(&tech);
    for &v_wl in &[0.6, 0.8, 1.0] {
        let samples = mismatch_model.sample_n(mc_samples, 51);
        // One transient per mismatch instance, reassembled in sample order,
        // so the statistics are bit-identical at any thread count.
        let voltages: Vec<f64> = par_map_sweep(&samples, 0, |_, sample| {
            waveform_at(&sim, v_wl, &nominal, sample, steps).map(|w| w.final_value())
        })
        .expect("mismatch Monte-Carlo sweep succeeds");
        print_row(&[
            format!("{v_wl:.1}"),
            format!("{:.4}", stats::mean(&voltages)),
            format!("{:.2}", stats::std_dev(&voltages) * 1e3),
            format!("{:.4}", stats::min(&voltages)),
            format!("{:.4}", stats::max(&voltages)),
        ]);
    }
    println!("\nAs in the paper: supply voltage and process corners move the curves strongly,");
    println!("temperature only slightly, and the mismatch-induced spread grows with V_WL.");
}
