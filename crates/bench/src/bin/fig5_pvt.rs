//! Fig. 5 — influence of PVT variations on the BLB discharge.
//!
//! (a) supply voltage, (b) temperature, (c) process corners,
//! (d) transistor mismatch (Monte Carlo).
//!
//! All four sweeps run on the error-strict parallel engine of
//! [`optima_core::sweep`]; a failing condition aborts the run naming the
//! condition instead of silently thinning the tables.  The deterministic
//! waveform tables (a–c) query the golden simulator through the unified
//! [`DischargeBackend`] interface — the same interface the fitted models
//! implement — while the mismatch panel (d) uses the simulator's
//! Monte-Carlo entry point, which deliberately sits below the interface.

use optima_bench::{print_header, print_row, quick_mode};
use optima_circuit::montecarlo::MismatchModel;
use optima_circuit::prelude::*;
use optima_core::backend::DischargeBackend;
use optima_core::sweep::{default_threads, par_map_sweep};
use optima_core::ModelError;
use optima_math::stats;

fn stimulus(v_wl: f64, steps: usize) -> DischargeStimulus {
    DischargeStimulus {
        word_line_voltage: Volts(v_wl),
        duration: Seconds(2e-9),
        time_steps: steps,
        ..DischargeStimulus::default()
    }
}

fn main() {
    let tech = Technology::tsmc65_like();
    let sim = TransientSimulator::new(tech.clone());
    let nominal = PvtConditions::nominal(&tech);
    let steps = if quick_mode() { 100 } else { 400 };
    let mc_samples = if quick_mode() { 100 } else { 1000 };
    let v_wl = 0.85;
    let sample_times = [
        Seconds(0.5e-9),
        Seconds(1.0e-9),
        Seconds(1.5e-9),
        Seconds(2.0e-9),
    ];
    println!(
        "(sweep engine: {} worker threads, results deterministic at any count; \
         waveforms via the '{}' discharge backend)\n",
        default_threads(),
        sim.backend_name()
    );

    let print_table = |rows: &[Vec<f64>]| {
        for (i, &t) in sample_times.iter().enumerate() {
            let mut row = vec![format!("{:.1}", t.0 * 1e9)];
            for column in rows {
                row.push(format!("{:.4}", column[i]));
            }
            print_row(&row);
        }
    };

    println!("# Fig. 5a — supply voltage (V_BL [V] at V_WL = {v_wl} V)\n");
    print_header(&["t [ns]", "VDD=0.9 V", "VDD=1.0 V", "VDD=1.1 V"]);
    let supply_points = [0.9, 1.0, 1.1];
    let supply_rows = par_map_sweep(&supply_points, 0, |_, &vdd| {
        sim.bitline_voltages(
            &stimulus(v_wl, steps),
            &nominal.with_vdd(Volts(vdd)),
            &sample_times,
        )
    })
    .expect("supply sweep succeeds");
    print_table(&supply_rows);

    println!("\n# Fig. 5b — temperature\n");
    print_header(&["t [ns]", "-40 degC", "25 degC", "125 degC"]);
    let temp_points = [-40.0, 25.0, 125.0];
    let temp_rows = par_map_sweep(&temp_points, 0, |_, &temp| {
        sim.bitline_voltages(
            &stimulus(v_wl, steps),
            &nominal.with_temperature(Celsius(temp)),
            &sample_times,
        )
    })
    .expect("temperature sweep succeeds");
    print_table(&temp_rows);

    println!("\n# Fig. 5c — process corners\n");
    print_header(&["t [ns]", "fast (FF)", "nominal (TT)", "slow (SS)"]);
    let corner_points = [
        ProcessCorner::FastFast,
        ProcessCorner::TypicalTypical,
        ProcessCorner::SlowSlow,
    ];
    let corner_rows = par_map_sweep(&corner_points, 0, |_, &corner| {
        sim.bitline_voltages(
            &stimulus(v_wl, steps),
            &nominal.with_corner(corner),
            &sample_times,
        )
    })
    .expect("process-corner sweep succeeds");
    print_table(&corner_rows);

    println!("\n# Fig. 5d — transistor mismatch ({mc_samples} samples)\n");
    print_header(&[
        "V_WL [V]",
        "mean V_BL(2 ns) [V]",
        "sigma [mV]",
        "min [V]",
        "max [V]",
    ]);
    let mismatch_model = MismatchModel::from_technology(&tech);
    for &v_wl in &[0.6, 0.8, 1.0] {
        let samples = mismatch_model.sample_n(mc_samples, 51);
        // One transient per mismatch instance, reassembled in sample order,
        // so the statistics are bit-identical at any thread count.
        let voltages: Vec<f64> = par_map_sweep(&samples, 0, |_, sample| {
            let waveform = sim.discharge_waveform(&stimulus(v_wl, steps), &nominal, sample)?;
            Ok::<_, ModelError>(waveform.final_value())
        })
        .expect("mismatch Monte-Carlo sweep succeeds");
        print_row(&[
            format!("{v_wl:.1}"),
            format!("{:.4}", stats::mean(&voltages)),
            format!("{:.2}", stats::std_dev(&voltages) * 1e3),
            format!("{:.4}", stats::min(&voltages)),
            format!("{:.4}", stats::max(&voltages)),
        ]);
    }
    println!("\nAs in the paper: supply voltage and process corners move the curves strongly,");
    println!("temperature only slightly, and the mismatch-induced spread grows with V_WL.");
}
