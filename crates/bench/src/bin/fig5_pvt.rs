//! Legacy shim: runs the registered `fig5_pvt` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run fig5_pvt` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("fig5_pvt");
}
