//! Ablation — polynomial degrees of the Eq. 3 discharge model.
//!
//! The paper fixes `p4(V_od) · p2(t)`.  This ablation sweeps both degrees and
//! reports the training residual, showing why degree (4, 2) is a good
//! accuracy/complexity trade-off.

use optima_bench::{print_header, print_row, quick_mode};
use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, Calibrator, ModelDegrees};

fn main() {
    let technology = Technology::tsmc65_like();
    let base = if quick_mode() {
        CalibrationConfig::fast()
    } else {
        CalibrationConfig::default()
    };

    println!("# Ablation — Eq. 3 polynomial degrees vs. training RMS error\n");
    print_header(&[
        "deg(V_od)",
        "deg(t)",
        "basic discharge RMS [mV]",
        "coefficients",
    ]);
    for overdrive_degree in 1..=5 {
        for time_degree in 1..=3 {
            let config = CalibrationConfig {
                degrees: ModelDegrees {
                    overdrive: overdrive_degree,
                    time: time_degree,
                    ..ModelDegrees::default()
                },
                ..base.clone()
            };
            let outcome = Calibrator::new(technology.clone(), config)
                .run()
                .expect("calibration succeeds");
            print_row(&[
                overdrive_degree.to_string(),
                time_degree.to_string(),
                format!("{:.3}", outcome.report().basic_discharge_rms_mv),
                format!("{}", (overdrive_degree + 1) * (time_degree + 1)),
            ]);
        }
    }
    println!("\nThe error drops steeply up to degree (4, 2) — the paper's choice — and");
    println!("flattens beyond it, while the coefficient count keeps growing.");
}
