//! Fig. 6 — OPTIMA discharge/energy model evaluation.
//!
//! Calibrates the models against the golden-reference circuit simulator and
//! reports the held-out RMS modeling errors of all six models (the paper
//! reports 0.76 mV, 0.88 mV, 0.76 mV, 0.59 mV, 0.15 fJ and 0.74 fJ for its
//! TSMC 65 nm reference; ours differ in absolute value because the golden
//! reference is a different simulator, but they must stay well below an ADC
//! LSB).

use optima_bench::{calibrate, print_header, print_row, quick_mode};
use optima_core::evaluation::ModelEvaluator;

fn main() {
    let fast = quick_mode();
    let (technology, outcome) = calibrate(fast);
    let report = outcome.report();

    println!("# Fig. 6 — OPTIMA model calibration and evaluation\n");
    println!(
        "Calibration used {} transient circuit simulations and {} training samples.\n",
        report.circuit_simulations, report.training_samples
    );

    println!("## Training residuals\n");
    print_header(&["Model", "Training RMS"]);
    print_row(&[
        "basic discharge (Eq. 3)".into(),
        format!("{:.3} mV", report.basic_discharge_rms_mv),
    ]);
    print_row(&[
        "supply (Eq. 4)".into(),
        format!("{:.3} mV", report.supply_rms_mv),
    ]);
    print_row(&[
        "temperature (Eq. 5)".into(),
        format!("{:.3} mV", report.temperature_rms_mv),
    ]);
    print_row(&[
        "mismatch sigma (Eq. 6)".into(),
        format!("{:.3} mV", report.mismatch_sigma_rms_mv),
    ]);
    print_row(&[
        "write energy (Eq. 7)".into(),
        format!("{:.3} fJ", report.write_energy_rms_fj),
    ]);
    print_row(&[
        "discharge energy (Eq. 8)".into(),
        format!("{:.3} fJ", report.discharge_energy_rms_fj),
    ]);

    let evaluator = ModelEvaluator::new(technology, outcome.into_models())
        .with_reference_time_steps(if fast { 150 } else { 400 });
    let grid = if fast { 4 } else { 8 };
    let mc = if fast { 20 } else { 100 };
    let held_out = evaluator
        .rms_errors(grid, mc)
        .expect("held-out evaluation succeeds");

    println!(
        "\n## Held-out RMS errors (Fig. 6 equivalent; '{}' vs '{}' through one DischargeBackend interface)\n",
        evaluator.reference_backend().backend_name(),
        evaluator.fitted_backend().backend_name()
    );
    print_header(&["Model", "Held-out RMS", "Paper (TSMC 65 nm)"]);
    print_row(&[
        "basic discharge (Eq. 3)".into(),
        format!("{:.3} mV", held_out.basic_discharge_mv),
        "0.76 mV".into(),
    ]);
    print_row(&[
        "supply (Eq. 4)".into(),
        format!("{:.3} mV", held_out.supply_mv),
        "0.88 mV".into(),
    ]);
    print_row(&[
        "temperature (Eq. 5)".into(),
        format!("{:.3} mV", held_out.temperature_mv),
        "0.76 mV".into(),
    ]);
    print_row(&[
        "mismatch sigma (Eq. 6)".into(),
        format!("{:.3} mV", held_out.mismatch_sigma_mv),
        "0.59 mV".into(),
    ]);
    print_row(&[
        "write energy (Eq. 7)".into(),
        format!("{:.3} fJ", held_out.write_energy_fj),
        "0.15 fJ".into(),
    ]);
    print_row(&[
        "discharge energy (Eq. 8)".into(),
        format!("{:.3} fJ", held_out.discharge_energy_fj),
        "0.74 fJ".into(),
    ]);
    println!(
        "\nWorst voltage-model RMS error: {:.3} mV (paper headline: 0.88 mV).",
        held_out.worst_voltage_error_mv()
    );
}
