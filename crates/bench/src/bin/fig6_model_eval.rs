//! Legacy shim: runs the registered `fig6_model_eval` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run fig6_model_eval` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("fig6_model_eval");
}
