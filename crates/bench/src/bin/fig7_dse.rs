//! Fig. 7 — design-space exploration of the 4-bit in-SRAM multiplier.
//!
//! Sweeps the paper's 48 design corners (τ0 × V_DAC,0 × V_DAC,FS) with the
//! OPTIMA models and prints the two panels of Fig. 7: error and energy as a
//! function of V_DAC,FS for several V_DAC,0 values (left, τ0 = 0.16 ns) and
//! as a function of τ0 for several V_DAC,FS values (right, V_DAC,0 = 0.4 V).

use optima_bench::{calibrated_models, print_header, print_row, quick_mode};
use optima_core::sweep::default_threads;
use optima_imc::dse::{DesignSpace, DesignSpaceExplorer};

fn main() {
    let (_technology, models) = calibrated_models(quick_mode());
    // Thread count 0 = automatic; the sweep is error-strict (a failing
    // corner aborts the run naming the corner — corners are never silently
    // dropped) and bit-identical at any thread count.
    let explorer = DesignSpaceExplorer::new(models).with_threads(0);
    let space = DesignSpace::paper_sweep();
    println!(
        "# Fig. 7 — design-space exploration ({} corners, {} worker threads)\n",
        space.len(),
        default_threads()
    );
    let results = explorer.explore(&space).expect("exploration succeeds");
    assert_eq!(
        results.len(),
        space.len(),
        "error-strict sweep must cover every corner"
    );

    println!("## Left panel: sweep of V_DAC,FS for each V_DAC,0 (tau0 = 0.16 ns)\n");
    print_header(&[
        "V_DAC,0 [V]",
        "V_DAC,FS [V]",
        "avg error [LSB]",
        "avg energy/op [fJ]",
    ]);
    for result in &results {
        if (result.point.tau0.0 - 0.16e-9).abs() < 1e-15 {
            print_row(&[
                format!("{:.1}", result.point.vdac_zero.0),
                format!("{:.1}", result.point.vdac_full_scale.0),
                format!("{:.2}", result.metrics.epsilon_mul),
                format!("{:.2}", result.metrics.energy_per_multiply.0),
            ]);
        }
    }

    println!("\n## Right panel: sweep of tau0 for each V_DAC,FS (V_DAC,0 = 0.4 V)\n");
    print_header(&[
        "tau0 [ns]",
        "V_DAC,FS [V]",
        "avg error [LSB]",
        "avg energy/op [fJ]",
    ]);
    for result in &results {
        if (result.point.vdac_zero.0 - 0.4).abs() < 1e-12 {
            print_row(&[
                format!("{:.2}", result.point.tau0.0 * 1e9),
                format!("{:.1}", result.point.vdac_full_scale.0),
                format!("{:.2}", result.metrics.epsilon_mul),
                format!("{:.2}", result.metrics.energy_per_multiply.0),
            ]);
        }
    }

    println!("\nExpected shape (paper): higher V_DAC,FS costs linearly more energy but improves");
    println!("accuracy in most cases; raising V_DAC,0 or tau0 also costs energy, where V_DAC,0");
    println!("helps the error and tau0 has little accuracy influence.");
}
