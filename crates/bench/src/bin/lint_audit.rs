fn main() {
    optima_bench::experiments::run_shim("lint_audit");
}
