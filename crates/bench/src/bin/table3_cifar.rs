//! Legacy shim: runs the registered `table3_cifar` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run table3_cifar` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("table3_cifar");
}
