//! Table III — DNN classification accuracies (CIFAR-10 experiment, scaled).
//!
//! Reuses the backbones trained for the Table II experiment, replaces the
//! classifier head with a 10-neuron dense layer, retrains the head with
//! transfer learning on a 10-class synthetic dataset and evaluates the same
//! FLOAT32 / INT4 / fom / power / variation matrix (top-1 only, as in the
//! paper).

use optima_bench::{calibrated_models, paper_corners, print_header, print_row, quick_mode};
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::models::{build_model, ModelKind};
use optima_dnn::multiplier::{ExactInt4Products, InMemoryProducts, ProductTable};
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::training::{Trainer, TrainingConfig};
use optima_dnn::transfer::transfer_to_new_head;
use optima_imc::multiplier::{InSramMultiplier, MultiplierTable};
use std::sync::Arc;

fn main() {
    let quick = quick_mode();
    let (_technology, models) = calibrated_models(quick);

    let mut product_tables: Vec<(String, Arc<dyn ProductTable>)> =
        vec![("INT4".to_string(), Arc::new(ExactInt4Products))];
    for (name, config) in paper_corners() {
        let multiplier =
            InSramMultiplier::new(models.clone(), config).expect("corner configuration is valid");
        let table =
            MultiplierTable::from_multiplier(&multiplier, multiplier.nominal_operating_point())
                .expect("table construction succeeds");
        product_tables.push((
            name.to_string(),
            Arc::new(InMemoryProducts::new(table, name)),
        ));
    }

    // Pre-training dataset (ImageNet stand-in) and transfer target (CIFAR stand-in).
    let pretrain_config = if quick {
        SyntheticImageConfig {
            classes: 8,
            train_per_class: 10,
            test_per_class: 4,
            ..SyntheticImageConfig::imagenet_like()
        }
    } else {
        SyntheticImageConfig::imagenet_like()
    };
    let target_config = if quick {
        SyntheticImageConfig {
            train_per_class: 12,
            test_per_class: 5,
            ..SyntheticImageConfig::cifar_like()
        }
    } else {
        SyntheticImageConfig::cifar_like()
    };
    let pretrain = Dataset::synthetic(pretrain_config);
    let target = Dataset::synthetic(target_config);

    let trainer = Trainer::new(TrainingConfig {
        epochs: if quick { 3 } else { 8 },
        learning_rate: 0.02,
        learning_rate_decay: 0.9,
    });

    println!("# Table III — classification accuracies (synthetic CIFAR-10 stand-in)\n");
    println!(
        "transfer target: {} classes, {} training / {} test samples\n",
        target.classes(),
        target.train_len(),
        target.test_len()
    );
    print_header(&[
        "Model",
        "FLOAT32 top-1 [%]",
        "INT4 top-1 [%]",
        "fom top-1 [%]",
        "power top-1 [%]",
        "variation top-1 [%]",
    ]);

    for kind in ModelKind::ALL {
        let shape = pretrain.image_shape().to_vec();
        let mut network = build_model(kind, shape[0], shape[1], pretrain.classes(), 42);
        trainer
            .train(&mut network, &pretrain)
            .expect("pre-training succeeds");
        // Transfer learning: new 10-class head, retrain only the head.
        transfer_to_new_head(&mut network, target.classes(), 7).expect("head swap succeeds");
        trainer
            .train_head_only(&mut network, &target)
            .expect("head retraining succeeds");

        // Per-image parallel fan-out over the sweep engine (0 = auto threads).
        let float_report = evaluate_batched(&network, &target, 0).expect("evaluation succeeds");
        let mut cells = vec![
            kind.to_string(),
            format!("{:.1}", float_report.top1_percent()),
        ];
        for (_, products) in &product_tables {
            let quantized = QuantizedNetwork::from_network(&network, products.clone())
                .expect("quantization succeeds");
            let report = evaluate_batched(&quantized, &target, 0).expect("evaluation succeeds");
            cells.push(format!("{:.1}", report.top1_percent()));
        }
        print_row(&cells);
    }

    println!(
        "\nPaper (full-scale CIFAR-10) for comparison: FLOAT32 92.2-93.4 %, INT4 92.0-93.1 %,"
    );
    println!("fom within 0.1 % of INT4, power 87.4-90.8 %, variation 66.9-73.8 %.");
}
