//! Standalone shim for the fault-sweep reliability experiment.

fn main() {
    optima_bench::experiments::run_shim("fault_sweep");
}
