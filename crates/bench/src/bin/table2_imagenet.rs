//! Legacy shim: runs the registered `table2_imagenet` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run table2_imagenet` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("table2_imagenet");
}
