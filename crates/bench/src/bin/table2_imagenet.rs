//! Table II — DNN classification accuracies (ImageNet experiment, scaled).
//!
//! The paper evaluates INT4-quantized VGG16/19 and ResNet50/101 on ImageNet
//! with the three in-SRAM multiplier corners.  Pre-trained Keras models and
//! ImageNet itself are not reproducible here, so scaled-down style-faithful
//! analogues are trained on a synthetic many-class dataset and then evaluated
//! with exactly the same multiplier-substitution pipeline (see DESIGN.md).
//! The quantity to compare against the paper is the *ordering and relative
//! degradation*: FLOAT32 ≈ INT4 ≈ fom > power ≫ variation.

use optima_bench::{calibrated_models, paper_corners, print_header, print_row, quick_mode};
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::models::{build_model, ModelKind};
use optima_dnn::multiplier::{ExactInt4Products, InMemoryProducts, ProductTable};
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::training::{Trainer, TrainingConfig};
use optima_imc::multiplier::{InSramMultiplier, MultiplierTable};
use std::sync::Arc;

fn main() {
    let quick = quick_mode();
    let (_technology, models) = calibrated_models(quick);

    // Build the three in-memory product tables from the Table I corners.
    let mut product_tables: Vec<(String, Arc<dyn ProductTable>)> =
        vec![("INT4".to_string(), Arc::new(ExactInt4Products))];
    for (name, config) in paper_corners() {
        let multiplier =
            InSramMultiplier::new(models.clone(), config).expect("corner configuration is valid");
        let table =
            MultiplierTable::from_multiplier(&multiplier, multiplier.nominal_operating_point())
                .expect("table construction succeeds");
        product_tables.push((
            name.to_string(),
            Arc::new(InMemoryProducts::new(table, name)),
        ));
    }

    // Synthetic stand-in for ImageNet.
    let dataset_config = if quick {
        SyntheticImageConfig {
            classes: 8,
            train_per_class: 12,
            test_per_class: 5,
            ..SyntheticImageConfig::imagenet_like()
        }
    } else {
        SyntheticImageConfig::imagenet_like()
    };
    let dataset = Dataset::synthetic(dataset_config);
    let trainer = Trainer::new(TrainingConfig {
        epochs: if quick { 3 } else { 8 },
        learning_rate: 0.02,
        learning_rate_decay: 0.9,
    });

    println!("# Table II — classification accuracies (synthetic ImageNet stand-in)\n");
    println!(
        "{} classes, {} training / {} test samples, {}x{} RGB-like images\n",
        dataset.classes(),
        dataset.train_len(),
        dataset.test_len(),
        dataset.image_shape()[1],
        dataset.image_shape()[2]
    );
    print_header(&[
        "Model",
        "Multiplications [x10^6]",
        "FLOAT32 top-1 / top-5 [%]",
        "INT4 top-1 / top-5 [%]",
        "fom top-1 / top-5 [%]",
        "power top-1 / top-5 [%]",
        "variation top-1 / top-5 [%]",
    ]);

    for kind in ModelKind::ALL {
        let shape = dataset.image_shape().to_vec();
        let mut network = build_model(kind, shape[0], shape[1], dataset.classes(), 42);
        trainer
            .train(&mut network, &dataset)
            .expect("training succeeds");

        let multiplications = network.multiplications(&shape).expect("shape propagates") as f64
            * dataset.test_len() as f64
            / 1.0e6;

        // Per-image parallel fan-out over the sweep engine (0 = auto threads).
        let float_report = evaluate_batched(&network, &dataset, 0).expect("evaluation succeeds");
        let mut cells = vec![
            kind.to_string(),
            format!("{multiplications:.2}"),
            format!(
                "{:.1} / {:.1}",
                float_report.top1_percent(),
                float_report.top5_percent()
            ),
        ];
        for (_, products) in &product_tables {
            let quantized = QuantizedNetwork::from_network(&network, products.clone())
                .expect("quantization succeeds");
            let report = evaluate_batched(&quantized, &dataset, 0).expect("evaluation succeeds");
            cells.push(format!(
                "{:.1} / {:.1}",
                report.top1_percent(),
                report.top5_percent()
            ));
        }
        print_row(&cells);
    }

    println!("\nPaper (full-scale ImageNet) for comparison: FLOAT32 top-1 70.3-76.4 %,");
    println!(
        "INT4 69.3-75.1 %, fom within 0.2 % of INT4, power 59.8-64.5 %, variation 36.7-48.5 %."
    );
}
