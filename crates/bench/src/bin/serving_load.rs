//! Standalone shim for the serving-engine load-sweep experiment.

fn main() {
    optima_bench::experiments::run_shim("serving_load");
}
