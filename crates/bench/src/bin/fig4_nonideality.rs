//! Fig. 4 — BLB discharge non-idealities.
//!
//! (a) BLB voltage over time for several word-line voltages (including a
//!     sub-threshold one, showing the residual discharge), and
//! (b) the nonlinear word-line-voltage dependency sampled at t = τ0.

use optima_bench::{print_header, print_row, quick_mode};
use optima_circuit::prelude::*;
use optima_circuit::pvt::linspace;
use optima_core::sweep::par_map_sweep;

fn main() {
    let tech = Technology::tsmc65_like();
    let sim = TransientSimulator::new(tech.clone());
    let pvt = PvtConditions::nominal(&tech);
    let steps = if quick_mode() { 100 } else { 400 };

    println!("# Fig. 4a — BLB voltage over time (V_BL [V])\n");
    let wordlines = [0.3, 0.5, 0.7, 0.85, 1.0];
    let times = linspace(0.0, 2.0e-9, 11);
    let mut header = vec!["t [ns]".to_string()];
    header.extend(wordlines.iter().map(|v| format!("V_WL={v:.2} V")));
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    // One transient simulation per word-line voltage, fanned out over the
    // error-strict sweep engine (0 = auto threads, deterministic order).
    let waveforms: Vec<Waveform> = par_map_sweep(&wordlines, 0, |_, &v_wl| {
        sim.discharge_waveform(
            &DischargeStimulus {
                word_line_voltage: Volts(v_wl),
                duration: Seconds(2e-9),
                time_steps: steps,
                ..DischargeStimulus::default()
            },
            &pvt,
            &MismatchSample::none(),
        )
    })
    .expect("transient simulations succeed");
    for &t in &times {
        let mut row = vec![format!("{:.2}", t * 1e9)];
        for waveform in &waveforms {
            row.push(format!("{:.4}", waveform.sample_at(Seconds(t)).unwrap().0));
        }
        print_row(&row);
    }

    println!("\n# Fig. 4b — word-line voltage dependency at t = τ0 = 0.5 ns\n");
    print_header(&["V_WL [V]", "V_BL(τ0) [V]", "ΔV_BL [mV]"]);
    let grid = linspace(0.4, 1.0, 13);
    let sampled: Vec<f64> = par_map_sweep(&grid, 0, |_, &v_wl| {
        sim.discharge_waveform(
            &DischargeStimulus {
                word_line_voltage: Volts(v_wl),
                duration: Seconds(0.6e-9),
                time_steps: steps,
                ..DischargeStimulus::default()
            },
            &pvt,
            &MismatchSample::none(),
        )
        .map(|waveform| waveform.sample_at(Seconds(0.5e-9)).unwrap().0)
    })
    .expect("transient simulations succeed");
    for (&v_wl, &v) in grid.iter().zip(sampled.iter()) {
        print_row(&[
            format!("{v_wl:.2}"),
            format!("{v:.4}"),
            format!("{:.1}", (pvt.vdd.0 - v) * 1e3),
        ]);
    }
    println!("\nThe discharge is visibly nonlinear in V_WL (quadratic device current)");
    println!("and a small residual discharge remains below the threshold voltage.");
}
