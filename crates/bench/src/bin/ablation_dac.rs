//! Ablation — linear vs. square-root pre-distorted word-line DAC.
//!
//! Section III-1 of the paper notes that the quadratic device current makes a
//! conventional (linear) DAC produce nonlinear multiplication results and
//! mentions the nonlinear DAC of ref. [15] as a potential fix.  This ablation
//! quantifies that effect with the OPTIMA models.

use optima_bench::{calibrated_models, paper_corners, print_header, print_row, quick_mode};
use optima_circuit::dac::DacTransfer;
use optima_imc::metrics::evaluate_multiplier;
use optima_imc::multiplier::InSramMultiplier;

fn main() {
    let (_technology, models) = calibrated_models(quick_mode());

    println!("# Ablation — DAC transfer curve vs. multiplier accuracy\n");
    print_header(&[
        "Corner",
        "DAC transfer",
        "eps_mul [LSB]",
        "max error [LSB]",
        "E_mul [fJ]",
    ]);
    for (name, config) in paper_corners() {
        for (label, transfer) in [
            ("linear", DacTransfer::Linear),
            ("sqrt pre-distortion", DacTransfer::SquareRootPredistortion),
        ] {
            let multiplier =
                InSramMultiplier::new(models.clone(), config.with_dac_transfer(transfer))
                    .expect("configuration is valid");
            let metrics = evaluate_multiplier(&multiplier).expect("evaluation succeeds");
            print_row(&[
                name.to_string(),
                label.to_string(),
                format!("{:.2}", metrics.epsilon_mul),
                format!("{:.1}", metrics.max_error_lsb),
                format!("{:.1}", metrics.energy_per_multiply.0),
            ]);
        }
    }
    println!("\nThe square-root pre-distortion linearises the quadratic device current and");
    println!("reduces the multiplication error, at the cost of a harder DAC implementation");
    println!("(which is why the paper's main flow keeps the linear DAC).");
}
