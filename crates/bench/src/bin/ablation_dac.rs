//! Legacy shim: runs the registered `ablation_dac` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run ablation_dac` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("ablation_dac");
}
