//! Fig. 8 — PVT and mismatch analysis of the selected corners.
//!
//! For the *fom*, *power* and *variation* corners of Table I: average
//! multiplication error and analog standard deviation as a function of the
//! expected result (left panels) and the influence of supply-voltage and
//! temperature variations on the error (right panels).

use optima_bench::{calibrated_models, paper_corners, print_header, print_row, quick_mode};
use optima_imc::multiplier::InSramMultiplier;
use optima_imc::pvt_analysis::{PvtAnalysis, PvtAnalysisConfig};

fn main() {
    let (_technology, models) = calibrated_models(quick_mode());
    let config = if quick_mode() {
        PvtAnalysisConfig::fast()
    } else {
        PvtAnalysisConfig::default()
    };

    println!("# Fig. 8 — corner PVT and mismatch analysis\n");
    for (name, corner_config) in paper_corners() {
        let multiplier = InSramMultiplier::new(models.clone(), corner_config)
            .expect("corner configuration is valid");
        let analysis = PvtAnalysis::run(&multiplier, &config).expect("analysis succeeds");

        println!("## Corner `{name}`\n");
        println!(
            "Average error: {:.2} LSB, worst-case analog sigma: {:.2} mV\n",
            analysis.nominal_epsilon_mul,
            analysis.worst_case_sigma * 1e3
        );

        println!("### Error / sigma vs. expected result (left panel, binned)\n");
        print_header(&["expected result", "avg error [LSB]", "analog sigma [mV]"]);
        // Bin the 116 distinct expected results into coarse ranges for readability.
        let profile = &analysis.result_profile;
        for range_start in (0..=200).step_by(50) {
            let range_end = range_start + 50;
            let indices: Vec<usize> = profile
                .expected_results
                .iter()
                .enumerate()
                .filter(|(_, &r)| (range_start..range_end).contains(&(r as usize)))
                .map(|(i, _)| i)
                .collect();
            if indices.is_empty() {
                continue;
            }
            let avg_error = indices
                .iter()
                .map(|&i| profile.average_error_lsb[i])
                .sum::<f64>()
                / indices.len() as f64;
            let avg_sigma = indices
                .iter()
                .map(|&i| profile.analog_sigma[i])
                .sum::<f64>()
                / indices.len() as f64;
            print_row(&[
                format!("{range_start}..{range_end}"),
                format!("{avg_error:.2}"),
                format!("{:.2}", avg_sigma * 1e3),
            ]);
        }

        println!("\n### Error vs. supply voltage (right panel)\n");
        print_header(&["VDD [V]", "avg error [LSB]"]);
        for (vdd, error) in analysis
            .supply_sweep
            .condition_values
            .iter()
            .zip(analysis.supply_sweep.average_error_lsb.iter())
        {
            print_row(&[format!("{vdd:.2}"), format!("{error:.2}")]);
        }

        println!("\n### Error vs. temperature (right panel)\n");
        print_header(&["T [degC]", "avg error [LSB]"]);
        for (temp, error) in analysis
            .temperature_sweep
            .condition_values
            .iter()
            .zip(analysis.temperature_sweep.average_error_lsb.iter())
        {
            print_row(&[format!("{temp:.0}"), format!("{error:.2}")]);
        }

        let mc = &analysis.mismatch_monte_carlo;
        println!(
            "\n### Mismatch Monte Carlo ({} instances)\n",
            mc.per_sample_error_lsb.len()
        );
        print_header(&["mean error [LSB]", "sigma [LSB]", "worst [LSB]"]);
        print_row(&[
            format!("{:.3}", mc.mean_error_lsb),
            format!("{:.3}", mc.std_error_lsb),
            format!("{:.3}", mc.worst_error_lsb),
        ]);
        println!();
    }
    println!("Expected shape (paper): the power corner struggles everywhere, the variation");
    println!("corner is poor for small expected results but robust for large ones, and the");
    println!("fom corner is the least susceptible to voltage and temperature variations.");
}
