//! Legacy shim: runs the registered `fig8_corner_pvt` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run fig8_corner_pvt` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("fig8_corner_pvt");
}
