//! `optima` — the multiplexed experiment runner.
//!
//! One binary drives every registered paper experiment:
//!
//! ```text
//! optima list                                   # enumerate the registry
//! optima run fig5_pvt --profile fast            # one experiment, text output
//! optima run --all --profile fast --json reports/
//! optima design-md                              # regenerate DESIGN.md
//! ```
//!
//! `run` executes the requested experiments in registry order, prints each
//! text report to stdout and (with `--json DIR`) writes one structured JSON
//! report per experiment.  The process exits non-zero when **any**
//! experiment fails or returns an empty report — every remaining experiment
//! still runs, so one broken figure cannot hide another.

use optima_bench::experiments::{self, BenchError, Experiment, ExperimentContext, Profile};
use optima_bench::json::Json;
use optima_circuit::array::ArrayConfig;
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str = "\
optima — unified runner for the paper's figure/table/ablation experiments

USAGE:
    optima list                      list every registered experiment
    optima run [NAME]... [OPTIONS]   run experiments (in registry order)
    optima design-md                 print the generated DESIGN.md index

OPTIONS (run):
    --all                 run every registered experiment
    --profile fast|full   execution profile (default: OPTIMA_PROFILE, else full;
                          OPTIMA_QUICK=1 is a deprecated alias for fast)
    --seed N              base RNG seed (default 42)
    --threads N           sweep-engine worker threads (default 0 = auto)
    --json DIR            additionally write DIR/<name>.json per experiment

ARRAY GEOMETRY (run; default: the paper's 16x4 INT4 macro):
    --operand-bits N      logical operand width, 1..=8 (widths beyond the
                          4-bit analog slice are composed from multiple
                          passes; unless --columns is given, columns grow to
                          hold the whole stored word)
    --slice-bits N        analog slice width per pass (default 4)
    --rows N              cells per bit-line (default 16)
    --columns N           bit-line columns per row (default 4)
    --mux N               columns sharing one converter pair (default 1)
    --spares N            replica spare columns for defect repair (default 0;
                          fault_sweep adds its own spares when left at 0)

RELIABILITY (run; consumed by the fault_sweep experiment):
    --defect-rate R       pin the defect-rate grid to [0, R] instead of the
                          profile's built-in rate ladder
    --lifetime-steps N    pin the lifetime grid to [0, N] aging steps

SERVING (run; consumed by the serving_load experiment):
    --max-batch N         pin the coalescer's batch-size cap instead of the
                          profile's built-in policy grid
    --max-delay-us N      pin the coalescer's close deadline in microseconds
    --shards N            pin the worker-shard count

EXIT STATUS:
    0 when every requested experiment succeeds with a non-empty report;
    1 when any experiment fails (all requested experiments still run);
    2 on a usage error.
";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    std::process::exit(2);
}

struct RunOptions {
    names: Vec<String>,
    all: bool,
    profile: Option<Profile>,
    seed: u64,
    threads: usize,
    json_dir: Option<PathBuf>,
    array: ArrayConfig,
    defect_rate: Option<f64>,
    lifetime_steps: Option<usize>,
    max_batch: Option<usize>,
    max_delay_us: Option<u64>,
    serve_shards: Option<usize>,
}

fn parse_run_options(args: &[String]) -> RunOptions {
    let mut options = RunOptions {
        names: Vec::new(),
        all: false,
        profile: None,
        seed: 42,
        threads: 0,
        json_dir: None,
        array: ArrayConfig::default(),
        defect_rate: None,
        lifetime_steps: None,
        max_batch: None,
        max_delay_us: None,
        serve_shards: None,
    };
    let mut columns_given = false;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        let mut value_for = |flag: &str| -> String {
            let value = args
                .get(i)
                .unwrap_or_else(|| usage_error(&format!("{flag} expects a value")))
                .clone();
            i += 1;
            value
        };
        match arg.as_str() {
            "--all" => options.all = true,
            "--profile" => {
                let value = value_for("--profile");
                options.profile = Some(Profile::parse(&value).unwrap_or_else(|| {
                    usage_error(&format!(
                        "unknown profile {value:?} (expected fast or full)"
                    ))
                }));
            }
            "--seed" => {
                let value = value_for("--seed");
                options.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --seed {value:?}")));
            }
            "--threads" => {
                let value = value_for("--threads");
                options.threads = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --threads {value:?}")));
            }
            "--json" => options.json_dir = Some(PathBuf::from(value_for("--json"))),
            "--operand-bits" => {
                let value = value_for("--operand-bits");
                options.array.operand_bits = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --operand-bits {value:?}")));
            }
            "--slice-bits" => {
                let value = value_for("--slice-bits");
                options.array.slice_bits = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --slice-bits {value:?}")));
            }
            "--rows" => {
                let value = value_for("--rows");
                options.array.rows = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --rows {value:?}")));
            }
            "--columns" => {
                let value = value_for("--columns");
                options.array.columns = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --columns {value:?}")));
                columns_given = true;
            }
            "--mux" => {
                let value = value_for("--mux");
                options.array.column_mux = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --mux {value:?}")));
            }
            "--spares" => {
                let value = value_for("--spares");
                options.array.spare_columns = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --spares {value:?}")));
            }
            "--defect-rate" => {
                let value = value_for("--defect-rate");
                let rate: f64 = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --defect-rate {value:?}")));
                if !(0.0..=1.0).contains(&rate) {
                    usage_error(&format!("--defect-rate must be within 0..=1, got {value}"));
                }
                options.defect_rate = Some(rate);
            }
            "--lifetime-steps" => {
                let value = value_for("--lifetime-steps");
                options.lifetime_steps = Some(value.parse().unwrap_or_else(|_| {
                    usage_error(&format!("invalid --lifetime-steps {value:?}"))
                }));
            }
            "--max-batch" => {
                let value = value_for("--max-batch");
                let max_batch: usize = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --max-batch {value:?}")));
                if max_batch == 0 {
                    usage_error("--max-batch must be at least 1");
                }
                options.max_batch = Some(max_batch);
            }
            "--max-delay-us" => {
                let value = value_for("--max-delay-us");
                options.max_delay_us =
                    Some(value.parse().unwrap_or_else(|_| {
                        usage_error(&format!("invalid --max-delay-us {value:?}"))
                    }));
            }
            "--shards" => {
                let value = value_for("--shards");
                let shards: usize = value
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --shards {value:?}")));
                if shards == 0 {
                    usage_error("--shards must be at least 1");
                }
                options.serve_shards = Some(shards);
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown option {flag}")),
            name => options.names.push(name.to_string()),
        }
    }
    // A wide operand needs a row wide enough to store it; grow the default
    // column count unless the user pinned it explicitly
    // (`--operand-bits 8` alone selects the 16×8 INT8 preset).
    if !columns_given {
        options.array.columns = options.array.columns.max(options.array.operand_bits as u16);
    }
    if let Err(err) = options.array.validate() {
        usage_error(&format!("invalid array geometry: {err}"));
    }
    options
}

fn cmd_list() {
    let experiments = experiments::registry();
    let width = experiments
        .iter()
        .map(|e| e.name().len())
        .max()
        .unwrap_or(0);
    println!("{} registered experiments:\n", experiments.len());
    for experiment in experiments {
        println!(
            "  {:width$}  {:22}  {}",
            experiment.name(),
            experiment.paper_ref(),
            experiment.description(),
        );
    }
    println!("\nRun one with `optima run <name>`, everything with `optima run --all`.");
}

/// Builds the JSON envelope around one experiment's report.
fn report_envelope(
    experiment: &dyn Experiment,
    profile: Profile,
    seed: u64,
    array: &ArrayConfig,
    report: &optima_bench::report::Report,
    elapsed_seconds: f64,
) -> Json {
    Json::object(vec![
        ("schema", Json::str("optima-report.v1")),
        ("experiment", Json::str(experiment.name())),
        ("paper_ref", Json::str(experiment.paper_ref())),
        ("description", Json::str(experiment.description())),
        ("profile", Json::str(profile.name())),
        ("geometry", Json::str(array.describe())),
        // Seeds are u64; values beyond i64::MAX have no JSON integer
        // representation here, so they fall back to a decimal string rather
        // than being recorded as a wrong (negative) number.
        (
            "seed",
            i64::try_from(seed)
                .map(Json::Int)
                .unwrap_or_else(|_| Json::str(seed.to_string())),
        ),
        ("elapsed_seconds", Json::Fixed(elapsed_seconds, 3)),
        ("items", report.to_json()),
    ])
}

fn cmd_run(args: &[String]) -> i32 {
    let options = parse_run_options(args);
    let profile = Profile::resolve(options.profile);
    let selected: Vec<&'static dyn Experiment> = if options.all {
        if !options.names.is_empty() {
            usage_error("--all cannot be combined with explicit experiment names");
        }
        experiments::registry().to_vec()
    } else {
        if options.names.is_empty() {
            usage_error("specify experiment names or --all");
        }
        options
            .names
            .iter()
            .map(|name| {
                experiments::find(name).unwrap_or_else(|| {
                    usage_error(&format!("unknown experiment {name:?}; see `optima list`"))
                })
            })
            .collect()
    };

    if let Some(dir) = &options.json_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {err}", dir.display());
            return 1;
        }
    }

    // One context for the whole run: profile/seed/threads are constant, and
    // sharing it keeps the lazily-calibrated handle alive across
    // experiments, so calibration really happens at most once per process —
    // even when the disk snapshot cache is disabled.
    let mut ctx = ExperimentContext::new(profile)
        .with_seed(options.seed)
        .with_threads(options.threads)
        .with_array(options.array);
    if let Some(rate) = options.defect_rate {
        ctx = ctx.with_defect_rate(rate);
    }
    if let Some(steps) = options.lifetime_steps {
        ctx = ctx.with_lifetime_steps(steps);
    }
    if let Some(max_batch) = options.max_batch {
        ctx = ctx.with_max_batch(max_batch);
    }
    if let Some(max_delay_us) = options.max_delay_us {
        ctx = ctx.with_max_delay_us(max_delay_us);
    }
    if let Some(shards) = options.serve_shards {
        ctx = ctx.with_serve_shards(shards);
    }
    let mut failures: Vec<(String, String)> = Vec::new();
    for (i, experiment) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        eprintln!(
            "[{}/{}] running {} ({}, profile {})",
            i + 1,
            selected.len(),
            experiment.name(),
            experiment.paper_ref(),
            profile.name()
        );
        let start = Instant::now();
        let outcome = experiment.run(&mut ctx);
        let elapsed = start.elapsed().as_secs_f64();
        match outcome {
            Ok(report) if report.is_empty() => {
                failures.push((
                    experiment.name().to_string(),
                    "experiment returned an empty report".to_string(),
                ));
                eprintln!("error: {} returned an empty report", experiment.name());
            }
            Ok(report) => {
                print!("{}", report.render_text());
                if let Some(dir) = &options.json_dir {
                    let envelope = report_envelope(
                        *experiment,
                        profile,
                        options.seed,
                        &options.array,
                        &report,
                        elapsed,
                    );
                    let path = dir.join(format!("{}.json", experiment.name()));
                    if let Err(err) = write_json(&path, &envelope) {
                        failures.push((experiment.name().to_string(), err.to_string()));
                        eprintln!("error: {err}");
                    }
                }
            }
            Err(err) => {
                failures.push((experiment.name().to_string(), err.to_string()));
                eprintln!("error: {} failed: {err}", experiment.name());
            }
        }
    }

    eprintln!(
        "\n{} of {} experiments succeeded",
        selected.len() - failures.len(),
        selected.len()
    );
    if failures.is_empty() {
        0
    } else {
        for (name, message) in &failures {
            eprintln!("  FAILED {name}: {message}");
        }
        1
    }
}

fn write_json(path: &Path, document: &Json) -> Result<(), BenchError> {
    std::fs::write(path, document.render()).map_err(|source| BenchError::Io {
        path: path.display().to_string(),
        source,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                usage_error("list takes no arguments");
            }
            cmd_list();
        }
        Some("run") => std::process::exit(cmd_run(&args[1..])),
        Some("design-md") => print!("{}", experiments::design_md()),
        Some("--help") | Some("-h") | Some("help") => print!("{USAGE}"),
        Some(other) => usage_error(&format!("unknown command {other:?}")),
        None => usage_error("missing command"),
    }
}
