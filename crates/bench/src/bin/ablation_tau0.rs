//! Ablation — ADC sampling time τ0 vs. accuracy and energy.
//!
//! Section III-1: small τ0 keeps the pass transistors in saturation but
//! shrinks the voltage swing (worse SNR); large τ0 increases swing and energy
//! and eventually pushes the discharge into the linear region.  This ablation
//! sweeps τ0 beyond the paper's three values.

use optima_bench::{calibrated_models, print_header, print_row, quick_mode};
use optima_imc::metrics::evaluate_multiplier;
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig};
use optima_math::units::{Seconds, Volts};

fn main() {
    let (_technology, models) = calibrated_models(quick_mode());

    println!("# Ablation — tau0 sweep at V_DAC,0 = 0.3 V, V_DAC,FS = 1.0 V\n");
    print_header(&[
        "tau0 [ns]",
        "eps_mul [LSB]",
        "E_mul [fJ]",
        "sigma@max [mV]",
        "FOM",
    ]);
    for tau0_ps in [80, 120, 160, 200, 240] {
        let tau0 = Seconds(tau0_ps as f64 * 1e-12);
        let config = MultiplierConfig::new(tau0, Volts(0.3), Volts(1.0));
        let multiplier =
            InSramMultiplier::new(models.clone(), config).expect("configuration is valid");
        let metrics = evaluate_multiplier(&multiplier).expect("evaluation succeeds");
        print_row(&[
            format!("{:.2}", tau0.0 * 1e9),
            format!("{:.2}", metrics.epsilon_mul),
            format!("{:.1}", metrics.energy_per_multiply.0),
            format!("{:.2}", metrics.sigma_at_max_discharge.0 * 1e3),
            format!("{:.4}", metrics.figure_of_merit()),
        ]);
    }
    println!("\nEnergy grows monotonically with tau0 while the accuracy changes little —");
    println!("the paper's observation that tau0 'has minimal influence on accuracy'.");
}
