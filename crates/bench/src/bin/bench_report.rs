//! Machine-readable perf reports: writes `BENCH_dnn.json`,
//! `BENCH_analog.json` and `BENCH_serving.json`.
//!
//! Measures the "before" (naive scalar kernels, per-product dynamic
//! dispatch, serial evaluation, per-pair analog evaluation) and "after"
//! (im2col + blocked GEMM, flattened product LUT, parallel batched
//! evaluation, batched analog grids) sides of the hot paths on identical
//! workloads, and emits the wall-clock numbers plus speedups as JSON so the
//! repository's perf trajectory is machine-checkable from this PR onward.
//!
//! Both reports also verify — and fail the process on violation — that each
//! fast path produces **bit-identical** results to its reference path
//! (quantized LUT logits vs. dynamic dispatch, batched multiplier tables
//! and corner metrics vs. the scalar loops), so a perf regression hunt can
//! never silently trade correctness for speed.
//!
//! The DNN report additionally enforces [`SPEEDUP_FLOORS`]: each committed
//! workload must hold roughly 80 % of the speedup recorded in the checked-in
//! `BENCH_dnn.json`, and the process exits nonzero when one regresses.
//!
//! ```bash
//! OPTIMA_PROFILE=fast cargo run --release --bin bench_report   # CI quick mode
//! cargo run --release --bin bench_report                       # full workload
//! ```

use optima_bench::experiments::Profile;
use optima_bench::json::Json;
use optima_bench::{calibrated_models, naive_network_forward, DynDispatchProducts};
use optima_circuit::technology::Technology;
use optima_core::calibration::{CalibrationConfig, Calibrator};
use optima_core::snapshot;
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::reference;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;
use optima_imc::metrics::{evaluate_multiplier_at, evaluate_multiplier_at_scalar};
use optima_imc::multiplier::{InSramMultiplier, MultiplierConfig, MultiplierTable};
use optima_math::units::{Celsius, Volts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Committed speedup floors for the DNN workloads: roughly 80 % of the
/// speedups recorded in the checked-in `BENCH_dnn.json`.  `bench_report`
/// exits nonzero when a measured speedup falls below its floor, so a hot-path
/// regression fails CI instead of silently rewriting the perf trajectory.
/// Quick mode halves the floors — 30-iteration runs on shared runners are
/// noisy — while still catching order-of-magnitude regressions.
const SPEEDUP_FLOORS: &[(&str, f64)] = &[
    ("conv2d_forward_8to16_16x16_k3", 18.0),
    ("dense_forward_1024to256", 5.0),
    ("quantized_forward_3ch_16x16_int4", 18.0),
    ("float_dataset_eval_16x16", 9.0),
    ("quantized_dataset_eval_16x16_int4", 14.0),
];

/// One before/after workload measurement.
struct Workload {
    name: &'static str,
    baseline: &'static str,
    optimized: &'static str,
    baseline_seconds: f64,
    optimized_seconds: f64,
    iterations: usize,
    /// Multiply-accumulate FLOPs one iteration performs (0 when the workload
    /// has no meaningful FLOP count, e.g. wall-clock-only measurements).
    flops_per_iteration: f64,
    /// Product-LUT gathers one iteration performs (0 for float workloads).
    lut_lookups_per_iteration: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline_seconds / self.optimized_seconds.max(1e-12)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name)),
            ("baseline", Json::str(self.baseline)),
            ("optimized", Json::str(self.optimized)),
            ("iterations", Json::Int(self.iterations as i64)),
            ("baseline_seconds", Json::Fixed(self.baseline_seconds, 6)),
            ("optimized_seconds", Json::Fixed(self.optimized_seconds, 6)),
            (
                "baseline_throughput_per_second",
                Json::Fixed(self.iterations as f64 / self.baseline_seconds.max(1e-12), 2),
            ),
            (
                "optimized_throughput_per_second",
                Json::Fixed(
                    self.iterations as f64 / self.optimized_seconds.max(1e-12),
                    2,
                ),
            ),
            ("speedup", Json::Fixed(self.speedup(), 2)),
        ];
        if self.flops_per_iteration > 0.0 {
            let total = self.flops_per_iteration * self.iterations as f64;
            fields.push((
                "baseline_gflops",
                Json::Fixed(total / self.baseline_seconds.max(1e-12) / 1e9, 3),
            ));
            fields.push((
                "optimized_gflops",
                Json::Fixed(total / self.optimized_seconds.max(1e-12) / 1e9, 3),
            ));
        }
        if self.lut_lookups_per_iteration > 0.0 {
            let total = self.lut_lookups_per_iteration * self.iterations as f64;
            fields.push((
                "optimized_lut_lookups_per_second",
                Json::Fixed(total / self.optimized_seconds.max(1e-12), 0),
            ));
        }
        fields.push((
            "speedup_floor",
            match SPEEDUP_FLOORS.iter().find(|(name, _)| *name == self.name) {
                Some(&(_, floor)) => Json::Fixed(floor, 2),
                None => Json::Null,
            },
        ));
        Json::object(fields)
    }
}

/// Fails the process when a DNN workload's measured speedup regresses below
/// its committed floor (halved in quick mode to absorb runner noise).
fn enforce_speedup_floors(workloads: &[Workload], quick: bool) {
    let relax = if quick { 0.5 } else { 1.0 };
    let mut failed = false;
    for &(name, floor) in SPEEDUP_FLOORS {
        let Some(workload) = workloads.iter().find(|w| w.name == name) else {
            eprintln!("speedup floor names an unknown workload: {name}");
            failed = true;
            continue;
        };
        let floor = floor * relax;
        if workload.speedup() < floor {
            eprintln!(
                "{name}: measured speedup {:.2}x is below the committed floor {floor:.2}x",
                workload.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Times `iterations` runs of `f` after one warm-up run.
fn time_iterations(iterations: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_secs_f64()
}

fn random_image(channels: usize, size: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        &[channels, size, size],
        (0..channels * size * size)
            .map(|_| rng.gen::<f32>())
            .collect(),
    )
    .expect("image shape matches its data")
}

fn eval_network(channels: usize, size: usize, classes: usize) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    Network::new(vec![
        Box::new(Conv2d::new(channels, 8, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Conv2d::new(8, 16, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(16 * (size / 4) * (size / 4), classes, &mut rng)),
    ])
}

/// Product-LUT gathers in one forward pass of [`eval_network`]: one lookup
/// per (weight-code, activation) MAC in the two conv layers and the dense
/// head.
fn eval_network_lut_lookups(channels: usize, size: usize, classes: usize) -> f64 {
    let conv1 = 8 * (channels * 3 * 3) * (size * size);
    let pooled = size / 2;
    let conv2 = 16 * (8 * 3 * 3) * (pooled * pooled);
    let dense = 16 * (size / 4) * (size / 4) * classes;
    (conv1 + conv2 + dense) as f64
}

fn main() {
    let quick = Profile::from_env().is_fast();
    let iterations = if quick { 30 } else { 200 };
    let mut workloads = Vec::new();

    // 1. Convolution forward: naive six-deep loop vs. packed-panel GEMM
    //    through the zero-allocation scratch arena (the steady-state path).
    {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let conv = Conv2d::new(8, 16, 3, &mut rng);
        let image = random_image(8, 16, 1);
        let mut scratch = KernelScratch::new();
        let mut output = Tensor::default();
        conv.infer_into(&image, &mut output, &mut scratch)
            .expect("conv shapes fit");
        assert_eq!(
            output,
            conv.infer(&image).expect("conv shapes fit"),
            "scratch conv path must be bit-identical to the allocating path"
        );
        let baseline_seconds = time_iterations(iterations, || {
            black_box(reference::conv2d_forward(
                image.data(),
                8,
                16,
                16,
                conv.weights(),
                conv.bias(),
                16,
                3,
            ));
        });
        let optimized_seconds = time_iterations(iterations, || {
            conv.infer_into(&image, &mut output, &mut scratch)
                .expect("conv shapes fit");
            black_box(output.data());
        });
        workloads.push(Workload {
            name: "conv2d_forward_8to16_16x16_k3",
            baseline: "naive-scalar",
            optimized: "packed-gemm-scratch",
            baseline_seconds,
            optimized_seconds,
            iterations,
            // 2 FLOPs per MAC over out_channels × patch × output pixels.
            flops_per_iteration: (2 * 16 * (8 * 3 * 3) * (16 * 16)) as f64,
            lut_lookups_per_iteration: 0.0,
        });
    }

    // 2. Dense forward: scalar dot loop vs. unrolled GEMV.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let dense = Dense::new(1024, 256, &mut rng);
        let input = random_image(1, 32, 2)
            .reshaped(&[1024])
            .expect("1024 elements");
        let baseline_seconds = time_iterations(iterations, || {
            black_box(reference::dense_forward(
                input.data(),
                dense.weights(),
                dense.bias(),
                1024,
                256,
            ));
        });
        let mut scratch = KernelScratch::new();
        let mut output = Tensor::default();
        dense
            .infer_into(&input, &mut output, &mut scratch)
            .expect("dense shapes fit");
        assert_eq!(
            output,
            dense.infer(&input).expect("dense shapes fit"),
            "scratch dense path must be bit-identical to the allocating path"
        );
        let optimized_seconds = time_iterations(iterations, || {
            dense
                .infer_into(&input, &mut output, &mut scratch)
                .expect("dense shapes fit");
            black_box(output.data());
        });
        workloads.push(Workload {
            name: "dense_forward_1024to256",
            baseline: "naive-scalar",
            optimized: "packed-gemv-scratch",
            baseline_seconds,
            optimized_seconds,
            iterations,
            flops_per_iteration: (2 * 1024 * 256) as f64,
            lut_lookups_per_iteration: 0.0,
        });
    }

    // 3. Quantized forward: per-product dynamic dispatch vs. flat 256-entry
    //    LUT — with a bit-identity check on every iteration's input.
    {
        let network = eval_network(3, 16, 10);
        let lut = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products))
            .expect("quantization succeeds");
        let dyn_dispatch = QuantizedNetwork::from_network(
            &network,
            Arc::new(DynDispatchProducts(Arc::new(ExactInt4Products))),
        )
        .expect("quantization succeeds");
        assert!(lut.uses_snapshot() && !dyn_dispatch.uses_snapshot());
        let image = random_image(3, 16, 3);
        let mut scratch = KernelScratch::new();
        let reference_logits = dyn_dispatch.forward(&image).expect("shapes fit");
        let lut_logits = lut
            .forward_with(&image, &mut scratch)
            .expect("shapes fit")
            .clone();
        assert_eq!(
            reference_logits, lut_logits,
            "quantized gather output must be bit-identical to the reference"
        );
        let baseline_seconds = time_iterations(iterations, || {
            black_box(dyn_dispatch.forward(&image).expect("shapes fit"));
        });
        let optimized_seconds = time_iterations(iterations, || {
            black_box(lut.forward_with(&image, &mut scratch).expect("shapes fit"));
        });
        workloads.push(Workload {
            name: "quantized_forward_3ch_16x16_int4",
            baseline: "dyn-dispatch",
            optimized: "lut-gather-scratch",
            baseline_seconds,
            optimized_seconds,
            iterations,
            flops_per_iteration: 0.0,
            lut_lookups_per_iteration: eval_network_lut_lookups(3, 16, 10),
        });
    }

    // 4. End-to-end dataset evaluation (the table2/table3 inner loop):
    //    naive serial kernels vs. im2col/LUT kernels + parallel fan-out.
    {
        let config = SyntheticImageConfig {
            classes: 8,
            train_per_class: 0,
            test_per_class: if quick { 8 } else { 25 },
            ..SyntheticImageConfig::imagenet_like()
        };
        let dataset = Dataset::synthetic(config);
        let shape = dataset.image_shape().to_vec();
        let network = eval_network(shape[0], shape[1], dataset.classes());
        let passes = if quick { 2 } else { 5 };

        let baseline_seconds = time_iterations(passes, || {
            for (image, &label) in dataset.test_iter() {
                let logits = naive_network_forward(&network, image);
                black_box(logits.argmax() == Some(label));
            }
        });
        let optimized_seconds = time_iterations(passes, || {
            black_box(evaluate_batched(&network, &dataset, 0).expect("evaluation succeeds"));
        });
        workloads.push(Workload {
            name: "float_dataset_eval_16x16",
            baseline: "naive-serial",
            optimized: "packed-gemm-parallel-scratch",
            baseline_seconds,
            optimized_seconds,
            iterations: passes * dataset.test_len(),
            // 2 FLOPs per MAC, one network forward per iteration (image).
            flops_per_iteration: 2.0
                * eval_network_lut_lookups(shape[0], shape[1], dataset.classes()),
            lut_lookups_per_iteration: 0.0,
        });

        // The same dataset through the quantized engine, checking that the
        // fast path stays bit-identical to the reference on every image.
        let lut = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products))
            .expect("quantization succeeds");
        let dyn_dispatch = QuantizedNetwork::from_network(
            &network,
            Arc::new(DynDispatchProducts(Arc::new(ExactInt4Products))),
        )
        .expect("quantization succeeds");
        for (image, _) in dataset.test_iter() {
            assert_eq!(
                dyn_dispatch.forward(image).expect("shapes fit"),
                lut.forward(image).expect("shapes fit"),
                "quantized LUT output must be bit-identical to the reference"
            );
        }
        let baseline_seconds = time_iterations(passes, || {
            for (image, &label) in dataset.test_iter() {
                let logits = dyn_dispatch.forward(image).expect("shapes fit");
                black_box(logits.argmax() == Some(label));
            }
        });
        let optimized_seconds = time_iterations(passes, || {
            black_box(evaluate_batched(&lut, &dataset, 0).expect("evaluation succeeds"));
        });
        workloads.push(Workload {
            name: "quantized_dataset_eval_16x16_int4",
            baseline: "dyn-dispatch-serial",
            optimized: "lut-gather-parallel-scratch",
            baseline_seconds,
            optimized_seconds,
            iterations: passes * dataset.test_len(),
            flops_per_iteration: 0.0,
            lut_lookups_per_iteration: eval_network_lut_lookups(
                shape[0],
                shape[1],
                dataset.classes(),
            ),
        });
    }

    write_report(
        "BENCH_dnn.json",
        "dnn-inference-hot-path",
        "quantized_equivalence",
        quick,
        &workloads,
    );
    print_report(
        "DNN kernel perf report (written to BENCH_dnn.json)",
        &workloads,
    );
    enforce_speedup_floors(&workloads, quick);

    let analog = analog_workloads(quick);
    write_report(
        "BENCH_analog.json",
        "analog-mac-hot-path",
        "analog_equivalence",
        quick,
        &analog,
    );
    print_report(
        "Analog MAC perf report (written to BENCH_analog.json)",
        &analog,
    );

    serving_section(quick);
}

/// The serving section: the same sweep, gate set and `BENCH_serving.json`
/// schema as the `serving_load` experiment (`optima_bench::serving` is the
/// shared core).  Bit identity against the single-request path is checked
/// at every grid point, and a violated sustained-throughput floor or
/// p50/p99 latency ceiling (floor halved / ceilings doubled in quick mode)
/// exits nonzero like the speedup floors above.
fn serving_section(quick: bool) {
    use optima_bench::serving;
    let spec = serving::SweepSpec::for_profile(quick);
    match serving::run_and_write(&spec, 42, quick, "bench_report") {
        Ok(report) => {
            let gates = serving::gate_outcome(&report);
            println!(
                "# Serving perf report (written to {})\n",
                serving::REPORT_PATH
            );
            for point in &report.points {
                println!(
                    "rate {:>6.0} req/s  batch<={:<2} delay<={:<5} us  {} shard(s)   \
                     p50 {:>6} us  p99 {:>6} us  {:>8.0} req/s",
                    point.rate_per_sec,
                    point.max_batch,
                    point.max_delay_us,
                    point.shards,
                    point.wall_p50_us,
                    point.wall_p99_us,
                    point.wall_throughput_per_sec,
                );
            }
            println!(
                "\nsustained {:.0} req/s (floor {:.0}); worst p50 {} us / p99 {} us \
                 (ceilings {} / {} us); {} bit-identity checks passed\n",
                gates.sustained_throughput_per_sec,
                gates.throughput_floor_per_sec,
                gates.worst_p50_us,
                gates.worst_p99_us,
                gates.p50_ceiling_us,
                gates.p99_ceiling_us,
                report.bit_identity_checks,
            );
        }
        Err(err) => {
            eprintln!("serving gate failed: {err}");
            std::process::exit(1);
        }
    }
}

/// The analog hot-path workloads: multiplier-table construction and a PVT
/// corner sweep, scalar per-pair path vs. batched analog grids — each gated
/// by a bit-identity check — plus calibration snapshot load vs. a full
/// recalibration.
fn analog_workloads(quick: bool) -> Vec<Workload> {
    let iterations = if quick { 10 } else { 50 };
    let mut workloads = Vec::new();

    let (_, models) = calibrated_models(true);
    let multiplier = InSramMultiplier::new(models, MultiplierConfig::paper_fom_corner())
        .expect("paper corner is valid");
    let at = multiplier.nominal_operating_point();

    // 1. 16×16 multiplier-table construction.
    {
        let scalar = MultiplierTable::from_multiplier_scalar(&multiplier, at)
            .expect("scalar table build succeeds");
        let batched = MultiplierTable::from_multiplier(&multiplier, at)
            .expect("batched table build succeeds");
        assert_eq!(
            scalar, batched,
            "batched multiplier table must be bit-identical to the scalar path"
        );
        let baseline_seconds = time_iterations(iterations, || {
            black_box(MultiplierTable::from_multiplier_scalar(&multiplier, at).unwrap());
        });
        let optimized_seconds = time_iterations(iterations, || {
            black_box(MultiplierTable::from_multiplier(&multiplier, at).unwrap());
        });
        workloads.push(Workload {
            name: "multiplier_table_build_16x16",
            baseline: "scalar-per-pair",
            optimized: "batched-analog-grid",
            baseline_seconds,
            optimized_seconds,
            iterations,
            flops_per_iteration: 0.0,
            lut_lookups_per_iteration: 0.0,
        });
    }

    // 2. PVT corner sweep: 9 corners × full input space (the Fig. 8 inner
    //    loop shape).
    {
        let corners: Vec<_> = [0.95, 1.0, 1.05]
            .iter()
            .flat_map(|&vdd| {
                [0.0, 25.0, 60.0]
                    .iter()
                    .map(move |&t| optima_imc::multiplier::OperatingPoint {
                        vdd: Volts(vdd),
                        temperature: Celsius(t),
                    })
            })
            .collect();
        for &corner in &corners {
            assert_eq!(
                evaluate_multiplier_at_scalar(&multiplier, corner).unwrap(),
                evaluate_multiplier_at(&multiplier, corner).unwrap(),
                "batched corner metrics must be bit-identical to the scalar path"
            );
        }
        let passes = if quick { 3 } else { 10 };
        let baseline_seconds = time_iterations(passes, || {
            for &corner in &corners {
                black_box(evaluate_multiplier_at_scalar(&multiplier, corner).unwrap());
            }
        });
        let optimized_seconds = time_iterations(passes, || {
            for &corner in &corners {
                black_box(evaluate_multiplier_at(&multiplier, corner).unwrap());
            }
        });
        workloads.push(Workload {
            name: "pvt_corner_sweep_9_corners",
            baseline: "scalar-per-pair",
            optimized: "batched-analog-grid",
            baseline_seconds,
            optimized_seconds,
            iterations: passes * corners.len(),
            flops_per_iteration: 0.0,
            lut_lookups_per_iteration: 0.0,
        });
    }

    // 3. Experiment start-up: full fast-grid recalibration vs. loading the
    //    persistent snapshot (what every experiment binary now does).
    {
        let technology = Technology::tsmc65_like();
        let config = CalibrationConfig::fast();
        let dir = std::env::temp_dir().join(format!("optima-bench-report-{}", std::process::id()));
        let path = dir.join("calibration-fast.v1.snap");
        let calibrate_start = Instant::now();
        let outcome = Calibrator::new(technology.clone(), config.clone())
            .run()
            .expect("calibration succeeds");
        let baseline_seconds = calibrate_start.elapsed().as_secs_f64();
        let array = optima_circuit::array::ArrayConfig::default();
        snapshot::save(&path, &outcome, &technology, &config, &array)
            .expect("snapshot save succeeds");
        let load_start = Instant::now();
        let loaded =
            snapshot::load(&path, &technology, &config, &array).expect("snapshot load succeeds");
        let optimized_seconds = load_start.elapsed().as_secs_f64();
        assert_eq!(outcome, loaded, "snapshot load must be bit-exact");
        std::fs::remove_dir_all(&dir).ok();
        workloads.push(Workload {
            name: "experiment_startup_fast_calibration",
            baseline: "recalibrate",
            optimized: "snapshot-load",
            baseline_seconds,
            optimized_seconds,
            iterations: 1,
            flops_per_iteration: 0.0,
            lut_lookups_per_iteration: 0.0,
        });
    }

    workloads
}

fn write_report(
    path: &str,
    report_name: &str,
    equivalence_key: &str,
    quick: bool,
    workloads: &[Workload],
) {
    // Emitted through the shared serializer of `optima_bench::json` — the
    // same writer behind the structured experiment reports.
    let document = Json::object(vec![
        ("report", Json::str(report_name)),
        ("generated_by", Json::str("bench_report")),
        ("quick_mode", Json::Bool(quick)),
        (equivalence_key, Json::str("bit-identical")),
        (
            "workloads",
            Json::Array(workloads.iter().map(Workload::to_json).collect()),
        ),
    ]);
    std::fs::write(path, document.render())
        .unwrap_or_else(|err| panic!("{path} is writable: {err}"));
}

fn print_report(title: &str, workloads: &[Workload]) {
    println!("# {title}\n");
    for workload in workloads {
        println!(
            "{:<36} {:>10.3} ms -> {:>10.3} ms   {:>6.1}x  ({} vs {})",
            workload.name,
            workload.baseline_seconds * 1e3,
            workload.optimized_seconds * 1e3,
            workload.speedup(),
            workload.baseline,
            workload.optimized,
        );
    }
    println!();
}
