//! Machine-readable DNN perf report: writes `BENCH_dnn.json`.
//!
//! Measures the "before" (naive scalar kernels, per-product dynamic
//! dispatch, serial evaluation) and "after" (im2col + blocked GEMM,
//! flattened product LUT, parallel batched evaluation) sides of the DNN
//! inference hot path on identical workloads, and emits the wall-clock
//! numbers plus speedups as JSON so the repository's perf trajectory is
//! machine-checkable from this PR onward.
//!
//! The report also verifies — and fails the process on violation — that the
//! LUT fast path produces **bit-identical** logits to the dynamic-dispatch
//! reference on every evaluated image, so a perf regression hunt can never
//! silently trade correctness for speed.
//!
//! ```bash
//! OPTIMA_QUICK=1 cargo run --release --bin bench_report   # CI quick mode
//! cargo run --release --bin bench_report                  # full workload
//! ```

use optima_bench::{naive_network_forward, quick_mode, DynDispatchProducts};
use optima_dnn::data::{Dataset, SyntheticImageConfig};
use optima_dnn::eval::evaluate_batched;
use optima_dnn::layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::reference;
use optima_dnn::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One before/after workload measurement.
struct Workload {
    name: &'static str,
    baseline: &'static str,
    optimized: &'static str,
    baseline_seconds: f64,
    optimized_seconds: f64,
    iterations: usize,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline_seconds / self.optimized_seconds.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"baseline\": \"{}\",\n",
                "      \"optimized\": \"{}\",\n",
                "      \"iterations\": {},\n",
                "      \"baseline_seconds\": {:.6},\n",
                "      \"optimized_seconds\": {:.6},\n",
                "      \"baseline_throughput_per_second\": {:.2},\n",
                "      \"optimized_throughput_per_second\": {:.2},\n",
                "      \"speedup\": {:.2}\n",
                "    }}"
            ),
            self.name,
            self.baseline,
            self.optimized,
            self.iterations,
            self.baseline_seconds,
            self.optimized_seconds,
            self.iterations as f64 / self.baseline_seconds.max(1e-12),
            self.iterations as f64 / self.optimized_seconds.max(1e-12),
            self.speedup(),
        )
    }
}

/// Times `iterations` runs of `f` after one warm-up run.
fn time_iterations(iterations: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_secs_f64()
}

fn random_image(channels: usize, size: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_vec(
        &[channels, size, size],
        (0..channels * size * size)
            .map(|_| rng.gen::<f32>())
            .collect(),
    )
    .expect("image shape matches its data")
}

fn eval_network(channels: usize, size: usize, classes: usize) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    Network::new(vec![
        Box::new(Conv2d::new(channels, 8, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Conv2d::new(8, 16, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(16 * (size / 4) * (size / 4), classes, &mut rng)),
    ])
}

fn main() {
    let quick = quick_mode();
    let iterations = if quick { 30 } else { 200 };
    let mut workloads = Vec::new();

    // 1. Convolution forward: naive six-deep loop vs. im2col + GEMM.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let conv = Conv2d::new(8, 16, 3, &mut rng);
        let image = random_image(8, 16, 1);
        let baseline_seconds = time_iterations(iterations, || {
            black_box(reference::conv2d_forward(
                image.data(),
                8,
                16,
                16,
                conv.weights(),
                conv.bias(),
                16,
                3,
            ));
        });
        let optimized_seconds = time_iterations(iterations, || {
            black_box(conv.infer(&image).expect("conv shapes fit"));
        });
        workloads.push(Workload {
            name: "conv2d_forward_8to16_16x16_k3",
            baseline: "naive-scalar",
            optimized: "im2col-gemm",
            baseline_seconds,
            optimized_seconds,
            iterations,
        });
    }

    // 2. Dense forward: scalar dot loop vs. unrolled GEMV.
    {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let dense = Dense::new(1024, 256, &mut rng);
        let input = random_image(1, 32, 2)
            .reshaped(&[1024])
            .expect("1024 elements");
        let baseline_seconds = time_iterations(iterations, || {
            black_box(reference::dense_forward(
                input.data(),
                dense.weights(),
                dense.bias(),
                1024,
                256,
            ));
        });
        let optimized_seconds = time_iterations(iterations, || {
            black_box(dense.infer(&input).expect("dense shapes fit"));
        });
        workloads.push(Workload {
            name: "dense_forward_1024to256",
            baseline: "naive-scalar",
            optimized: "gemv",
            baseline_seconds,
            optimized_seconds,
            iterations,
        });
    }

    // 3. Quantized forward: per-product dynamic dispatch vs. flat 256-entry
    //    LUT — with a bit-identity check on every iteration's input.
    {
        let network = eval_network(3, 16, 10);
        let lut = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products))
            .expect("quantization succeeds");
        let dyn_dispatch = QuantizedNetwork::from_network(
            &network,
            Arc::new(DynDispatchProducts(Arc::new(ExactInt4Products))),
        )
        .expect("quantization succeeds");
        assert!(lut.uses_snapshot() && !dyn_dispatch.uses_snapshot());
        let image = random_image(3, 16, 3);
        let reference_logits = dyn_dispatch.forward(&image).expect("shapes fit");
        let lut_logits = lut.forward(&image).expect("shapes fit");
        assert_eq!(
            reference_logits, lut_logits,
            "quantized LUT output must be bit-identical to the reference"
        );
        let baseline_seconds = time_iterations(iterations, || {
            black_box(dyn_dispatch.forward(&image).expect("shapes fit"));
        });
        let optimized_seconds = time_iterations(iterations, || {
            black_box(lut.forward(&image).expect("shapes fit"));
        });
        workloads.push(Workload {
            name: "quantized_forward_3ch_16x16_int4",
            baseline: "dyn-dispatch",
            optimized: "flat-lut",
            baseline_seconds,
            optimized_seconds,
            iterations,
        });
    }

    // 4. End-to-end dataset evaluation (the table2/table3 inner loop):
    //    naive serial kernels vs. im2col/LUT kernels + parallel fan-out.
    {
        let config = SyntheticImageConfig {
            classes: 8,
            train_per_class: 0,
            test_per_class: if quick { 8 } else { 25 },
            ..SyntheticImageConfig::imagenet_like()
        };
        let dataset = Dataset::synthetic(config);
        let shape = dataset.image_shape().to_vec();
        let network = eval_network(shape[0], shape[1], dataset.classes());
        let passes = if quick { 2 } else { 5 };

        let baseline_seconds = time_iterations(passes, || {
            for (image, &label) in dataset.test_iter() {
                let logits = naive_network_forward(&network, image);
                black_box(logits.argmax() == Some(label));
            }
        });
        let optimized_seconds = time_iterations(passes, || {
            black_box(evaluate_batched(&network, &dataset, 0).expect("evaluation succeeds"));
        });
        workloads.push(Workload {
            name: "float_dataset_eval_16x16",
            baseline: "naive-serial",
            optimized: "im2col-gemm-parallel",
            baseline_seconds,
            optimized_seconds,
            iterations: passes * dataset.test_len(),
        });

        // The same dataset through the quantized engine, checking that the
        // fast path stays bit-identical to the reference on every image.
        let lut = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products))
            .expect("quantization succeeds");
        let dyn_dispatch = QuantizedNetwork::from_network(
            &network,
            Arc::new(DynDispatchProducts(Arc::new(ExactInt4Products))),
        )
        .expect("quantization succeeds");
        for (image, _) in dataset.test_iter() {
            assert_eq!(
                dyn_dispatch.forward(image).expect("shapes fit"),
                lut.forward(image).expect("shapes fit"),
                "quantized LUT output must be bit-identical to the reference"
            );
        }
        let baseline_seconds = time_iterations(passes, || {
            for (image, &label) in dataset.test_iter() {
                let logits = dyn_dispatch.forward(image).expect("shapes fit");
                black_box(logits.argmax() == Some(label));
            }
        });
        let optimized_seconds = time_iterations(passes, || {
            black_box(evaluate_batched(&lut, &dataset, 0).expect("evaluation succeeds"));
        });
        workloads.push(Workload {
            name: "quantized_dataset_eval_16x16_int4",
            baseline: "dyn-dispatch-serial",
            optimized: "flat-lut-parallel",
            baseline_seconds,
            optimized_seconds,
            iterations: passes * dataset.test_len(),
        });
    }

    let body = workloads
        .iter()
        .map(Workload::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"report\": \"dnn-inference-hot-path\",\n",
            "  \"generated_by\": \"bench_report\",\n",
            "  \"quick_mode\": {},\n",
            "  \"quantized_equivalence\": \"bit-identical\",\n",
            "  \"workloads\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick, body
    );
    std::fs::write("BENCH_dnn.json", &json).expect("BENCH_dnn.json is writable");

    println!("# DNN kernel perf report (written to BENCH_dnn.json)\n");
    for workload in &workloads {
        println!(
            "{:<36} {:>10.3} ms -> {:>10.3} ms   {:>6.1}x  ({} vs {})",
            workload.name,
            workload.baseline_seconds * 1e3,
            workload.optimized_seconds * 1e3,
            workload.speedup(),
            workload.baseline,
            workload.optimized,
        );
    }
}
