//! Legacy shim: runs the registered `geometry_sweep` experiment at the
//! default (paper 16×4 INT4, plus INT8 composition) geometries and prints its
//! text report.  Profile comes from `OPTIMA_PROFILE` (or the deprecated
//! `OPTIMA_QUICK=1`); prefer `optima run geometry_sweep --operand-bits 8 ...`
//! for the full geometry-selecting CLI.

fn main() {
    optima_bench::experiments::run_shim("geometry_sweep");
}
