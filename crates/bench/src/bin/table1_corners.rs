//! Legacy shim: runs the registered `table1_corners` experiment and prints its text
//! report (byte-identical to the pre-refactor harness).  Profile comes from
//! `OPTIMA_PROFILE` (or the deprecated `OPTIMA_QUICK=1`); prefer
//! `optima run table1_corners` for the full CLI.

fn main() {
    optima_bench::experiments::run_shim("table1_corners");
}
