//! Table I — selected design corners.
//!
//! Explores the 48-corner design space, computes the figure of merit
//! (Eq. 9) and selects the *fom*, *power* and *variation* corners, printing
//! their parameters, ϵ_mul and E_mul next to the paper's values.

use optima_bench::{calibrated_models, print_header, print_row, quick_mode};
use optima_imc::dse::{DesignSpace, DesignSpaceExplorer};
use optima_imc::fom::select_corners;
use optima_imc::pareto::pareto_front;

fn main() {
    let (_technology, models) = calibrated_models(quick_mode());
    let explorer = DesignSpaceExplorer::new(models).with_threads(4);
    let results = explorer
        .explore(&DesignSpace::paper_sweep())
        .expect("exploration succeeds");
    let selected = select_corners(&results).expect("corner selection succeeds");

    println!("# Table I — selected design corners\n");
    print_header(&[
        "Corner",
        "tau0 [ns]",
        "V_DAC,0 [V]",
        "V_DAC,FS [V]",
        "eps_mul [LSB]",
        "E_mul [fJ]",
        "sigma@max [mV]",
        "FOM",
    ]);
    for (name, corner) in [
        ("fom", &selected.fom),
        ("power", &selected.power),
        ("variation", &selected.variation),
    ] {
        print_row(&[
            name.to_string(),
            format!("{:.2}", corner.point.tau0.0 * 1e9),
            format!("{:.1}", corner.point.vdac_zero.0),
            format!("{:.1}", corner.point.vdac_full_scale.0),
            format!("{:.2}", corner.metrics.epsilon_mul),
            format!("{:.1}", corner.metrics.energy_per_multiply.0),
            format!("{:.2}", corner.metrics.sigma_at_max_discharge.0 * 1e3),
            format!("{:.4}", corner.metrics.figure_of_merit()),
        ]);
    }

    println!("\nPaper values for reference:");
    print_header(&[
        "Corner",
        "tau0 [ns]",
        "V_DAC,0 [V]",
        "V_DAC,FS [V]",
        "eps_mul",
        "E_mul",
    ]);
    print_row(&[
        "fom".into(),
        "0.16".into(),
        "0.3".into(),
        "1.0".into(),
        "4.78".into(),
        "44 fJ".into(),
    ]);
    print_row(&[
        "power".into(),
        "0.16".into(),
        "0.3".into(),
        "0.7".into(),
        "15".into(),
        "37 fJ".into(),
    ]);
    print_row(&[
        "variation".into(),
        "0.24".into(),
        "0.4".into(),
        "1.0".into(),
        "9.6".into(),
        "69.8 fJ".into(),
    ]);

    let front = pareto_front(&results);
    println!(
        "\nPareto-optimal corners over (energy, error): {} of {}",
        front.len(),
        results.len()
    );
    print_header(&[
        "tau0 [ns]",
        "V_DAC,0 [V]",
        "V_DAC,FS [V]",
        "eps_mul [LSB]",
        "E_mul [fJ]",
    ]);
    for corner in &front {
        print_row(&[
            format!("{:.2}", corner.point.tau0.0 * 1e9),
            format!("{:.1}", corner.point.vdac_zero.0),
            format!("{:.1}", corner.point.vdac_full_scale.0),
            format!("{:.2}", corner.metrics.epsilon_mul),
            format!("{:.1}", corner.metrics.energy_per_multiply.0),
        ]);
    }
}
