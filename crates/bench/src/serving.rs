//! Serving-engine load sweep shared by the `serving_load` experiment and
//! the `bench_report` serving section.
//!
//! One measurement core, one gate set, one `BENCH_serving.json` schema
//! (`optima-serving.v1`) — whichever harness runs it, the machine-readable
//! perf trajectory has a single shape.  The sweep drives the
//! `optima_serve` engine (bounded queue → batch coalescer → shard pool)
//! over a grid of arrival rates × batch policies × shard counts with an
//! INT4-quantized CNN probe, and self-gates on four invariants:
//!
//! 1. **bit identity** — every served request's logits equal a lone
//!    `forward_with` call on the same image, at every grid point (the
//!    acceptance anchor: batching and sharding may never change results);
//! 2. **coalesce-wait bound** — no batch closes later than its oldest
//!    member's arrival plus `max_delay_us` (virtual clock, deterministic);
//! 3. **sustained throughput** — the best wall-clock throughput across the
//!    sweep must hold [`THROUGHPUT_FLOOR_PER_SEC`] (halved in quick mode:
//!    shared CI runners are noisy);
//! 4. **tail latency** — every grid point's wall p50/p99 must stay under
//!    [`P50_CEILING_US`]/[`P99_CEILING_US`] (doubled in quick mode).
//!
//! A violated gate surfaces as [`BenchError::Failed`], which both the
//! `optima` runner and `bench_report` turn into a nonzero exit.

use crate::experiments::BenchError;
use crate::json::Json;
use optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;
use optima_serve::{BatchPolicy, LoadPattern, ServeConfig, ServiceModel, ServingEngine};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// File the machine-readable serving sweep lands in (current working
/// directory, next to `BENCH_dnn.json` / `BENCH_reliability.json`).
pub const REPORT_PATH: &str = "BENCH_serving.json";

/// Schema marker of [`REPORT_PATH`] (grepped by CI).
pub const SCHEMA: &str = "optima-serving.v1";

/// Committed sustained-throughput floor in requests per second: the best
/// grid point of the sweep must reach it (quick mode halves the floor).
/// The INT4 probe sustains tens of thousands of requests per second on a
/// laptop core, so this catches an order-of-magnitude serving regression
/// without flaking on slow shared runners.
pub const THROUGHPUT_FLOOR_PER_SEC: f64 = 1_000.0;

/// Committed wall p50 latency ceiling in microseconds, enforced at every
/// grid point (quick mode doubles the ceiling).
pub const P50_CEILING_US: u64 = 50_000;

/// Committed wall p99 latency ceiling in microseconds, enforced at every
/// grid point (quick mode doubles the ceiling).
pub const P99_CEILING_US: u64 = 250_000;

/// The sweep grid: every combination of rate × policy × shard count runs
/// once.
pub struct SweepSpec {
    /// Open-loop arrival rates, in requests per second.
    pub rates: Vec<f64>,
    /// `(max_batch, max_delay_us)` coalescing policies.
    pub policies: Vec<(usize, u64)>,
    /// Worker shard counts.
    pub shards: Vec<usize>,
    /// Submissions per grid point.
    pub requests: usize,
}

impl SweepSpec {
    /// The profile-default grid: 2×2×1 in quick mode, 3×3×2 at full
    /// fidelity.
    pub fn for_profile(quick: bool) -> SweepSpec {
        if quick {
            SweepSpec {
                rates: vec![2_000.0, 8_000.0],
                policies: vec![(1, 0), (8, 500)],
                shards: vec![2],
                requests: 96,
            }
        } else {
            SweepSpec {
                rates: vec![1_000.0, 4_000.0, 16_000.0],
                policies: vec![(1, 0), (4, 250), (8, 500)],
                shards: vec![1, 4],
                requests: 384,
            }
        }
    }
}

/// One measured grid point of the sweep.
pub struct SweepPoint {
    pub rate_per_sec: f64,
    pub max_batch: usize,
    pub max_delay_us: u64,
    pub shards: usize,
    pub requests: usize,
    pub served: usize,
    pub rejected: usize,
    pub batches: usize,
    pub mean_batch: f64,
    pub largest_batch: usize,
    /// Worst coalescing wait (batch close − oldest arrival), virtual µs.
    pub max_coalesce_wait_us: u64,
    /// Virtual end-to-end percentiles from the deterministic plan.
    pub virtual_p50_us: u64,
    pub virtual_p99_us: u64,
    /// Wall end-to-end percentiles (measured batch durations replayed on
    /// the plan's admission timeline).
    pub wall_p50_us: u64,
    pub wall_p90_us: u64,
    pub wall_p99_us: u64,
    pub wall_throughput_per_sec: f64,
    /// Total measured shard busy time, in seconds.
    pub busy_seconds: f64,
}

/// The full sweep result plus its gate outcome.
pub struct ServingReport {
    pub points: Vec<SweepPoint>,
    /// Served-request logits compared against the single-request path.
    pub bit_identity_checks: usize,
    /// Best wall throughput across the sweep (the "sustained" gate value).
    pub sustained_throughput_per_sec: f64,
    /// Worst wall p50/p99 across the sweep.
    pub worst_p50_us: u64,
    pub worst_p99_us: u64,
    /// Worst coalescing wait across the sweep.
    pub max_coalesce_wait_us: u64,
    pub quick: bool,
}

/// The CNN probe the sweep serves: the repo's standard 1×8×8 four-class
/// shape, INT4-quantized through the exact product table (no calibration
/// dependency — serving perf is orthogonal to the analog models).
fn serving_probe(seed: u64) -> Result<QuantizedNetwork, BenchError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5e57_e000);
    let network = Network::new(vec![
        Box::new(Conv2d::new(1, 4, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(4 * 4 * 4, 4, &mut rng)),
    ]);
    Ok(QuantizedNetwork::from_network(
        &network,
        Arc::new(ExactInt4Products),
    )?)
}

/// The request image pool: 8 deterministic 1×8×8 images.
fn serving_images(seed: u64) -> Vec<Tensor> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1AE5);
    (0..8)
        .map(|_| {
            Tensor::from_vec(
                &[1, 8, 8],
                (0..64).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
            )
            .expect("probe image shape matches its data")
        })
        .collect()
}

/// Runs the sweep, enforces the gates and writes [`REPORT_PATH`].
///
/// `generated_by` names the harness in the JSON (`serving_load` or
/// `bench_report`).  The report is written even when a wall-clock gate
/// fails — the trajectory file then records the violation — but a failed
/// gate still returns [`BenchError::Failed`] so the caller exits nonzero.
pub fn run_and_write(
    spec: &SweepSpec,
    seed: u64,
    quick: bool,
    generated_by: &str,
) -> Result<ServingReport, BenchError> {
    let report = run_sweep(spec, seed, quick)?;
    let gates = gate_outcome(&report);
    write_json(&report, &gates, generated_by)?;
    enforce_gates(&gates)?;
    Ok(report)
}

/// Runs every grid point and checks the deterministic gates (bit identity,
/// coalesce-wait bound) inline; wall-clock gates are left to
/// [`enforce_gates`] so the JSON can record a violation before failing.
pub fn run_sweep(spec: &SweepSpec, seed: u64, quick: bool) -> Result<ServingReport, BenchError> {
    let probe = serving_probe(seed)?;
    let images = serving_images(seed);
    // Reference logits once per pool image: the single-request path every
    // served request is compared against.
    let mut scratch = KernelScratch::new();
    let expected: Vec<Tensor> = images
        .iter()
        .map(|image| Ok(probe.forward_with(image, &mut scratch)?.clone()))
        .collect::<Result<_, BenchError>>()?;

    let mut points = Vec::new();
    let mut bit_identity_checks = 0usize;
    for &rate_per_sec in &spec.rates {
        for &(max_batch, max_delay_us) in &spec.policies {
            for &shards in &spec.shards {
                let config = ServeConfig {
                    policy: BatchPolicy {
                        max_batch,
                        max_delay_us,
                    },
                    shards,
                    queue_capacity: (8 * max_batch).max(64),
                    service: ServiceModel::default(),
                };
                let pattern = LoadPattern::OpenLoop {
                    rate_per_sec,
                    requests: spec.requests,
                };
                let mut engine = ServingEngine::new(config)?;
                engine.run(&pattern, seed, &images, &probe)?;
                let plan = engine.last_plan().expect("engine just ran");

                // Gate 1: bit identity against the single-request path, for
                // every served request of every grid point.
                for (request, planned) in plan.requests().iter().enumerate() {
                    let Some(served) = engine.logits(request) else {
                        continue;
                    };
                    if *served != expected[planned.image] {
                        return Err(BenchError::Failed(format!(
                            "served logits diverged from the single-request path \
                             (rate {rate_per_sec}, policy ({max_batch}, {max_delay_us} us), \
                             {shards} shards, request {request})"
                        )));
                    }
                    bit_identity_checks += 1;
                }

                // Gate 2: the coalescer honoured max_delay (deterministic,
                // so a violation is a planner bug, not runner noise).
                let max_coalesce_wait_us = plan
                    .batches()
                    .iter()
                    .map(|b| b.close_us - b.first_arrival_us)
                    .max()
                    .unwrap_or(0);
                if max_coalesce_wait_us > max_delay_us {
                    return Err(BenchError::Failed(format!(
                        "a batch waited {max_coalesce_wait_us} us to close, past the \
                         {max_delay_us} us policy bound (rate {rate_per_sec}, {shards} shards)"
                    )));
                }

                let stats = engine.wall_stats().expect("engine just ran");
                let virtual_latency = plan.virtual_latency();
                points.push(SweepPoint {
                    rate_per_sec,
                    max_batch,
                    max_delay_us,
                    shards,
                    requests: plan.requests().len(),
                    served: plan.served(),
                    rejected: plan.rejected(),
                    batches: plan.batches().len(),
                    mean_batch: plan.mean_batch(),
                    largest_batch: plan.max_batch(),
                    max_coalesce_wait_us,
                    virtual_p50_us: virtual_latency.p50(),
                    virtual_p99_us: virtual_latency.p99(),
                    wall_p50_us: stats.latency.p50(),
                    wall_p90_us: stats.latency.p90(),
                    wall_p99_us: stats.latency.p99(),
                    wall_throughput_per_sec: stats.throughput_per_sec,
                    busy_seconds: stats.busy_seconds,
                });
            }
        }
    }

    let sustained_throughput_per_sec = points
        .iter()
        .map(|p| p.wall_throughput_per_sec)
        .fold(0.0, f64::max);
    let worst_p50_us = points.iter().map(|p| p.wall_p50_us).max().unwrap_or(0);
    let worst_p99_us = points.iter().map(|p| p.wall_p99_us).max().unwrap_or(0);
    let max_coalesce_wait_us = points
        .iter()
        .map(|p| p.max_coalesce_wait_us)
        .max()
        .unwrap_or(0);
    Ok(ServingReport {
        points,
        bit_identity_checks,
        sustained_throughput_per_sec,
        worst_p50_us,
        worst_p99_us,
        max_coalesce_wait_us,
        quick,
    })
}

/// The wall-clock gate verdicts of a sweep (quick mode halves the
/// throughput floor and doubles the latency ceilings).
pub struct GateOutcome {
    pub throughput_floor_per_sec: f64,
    pub p50_ceiling_us: u64,
    pub p99_ceiling_us: u64,
    pub sustained_throughput_per_sec: f64,
    pub worst_p50_us: u64,
    pub worst_p99_us: u64,
    pub max_coalesce_wait_us: u64,
    pub throughput_holds_floor: bool,
    pub latency_holds_ceilings: bool,
}

/// Evaluates the wall-clock gates at the profile-relaxed thresholds.
pub fn gate_outcome(report: &ServingReport) -> GateOutcome {
    let (relax_floor, relax_ceiling) = if report.quick { (0.5, 2) } else { (1.0, 1) };
    let throughput_floor_per_sec = THROUGHPUT_FLOOR_PER_SEC * relax_floor;
    let p50_ceiling_us = P50_CEILING_US * relax_ceiling;
    let p99_ceiling_us = P99_CEILING_US * relax_ceiling;
    GateOutcome {
        throughput_floor_per_sec,
        p50_ceiling_us,
        p99_ceiling_us,
        sustained_throughput_per_sec: report.sustained_throughput_per_sec,
        worst_p50_us: report.worst_p50_us,
        worst_p99_us: report.worst_p99_us,
        max_coalesce_wait_us: report.max_coalesce_wait_us,
        throughput_holds_floor: report.sustained_throughput_per_sec >= throughput_floor_per_sec,
        latency_holds_ceilings: report.worst_p50_us <= p50_ceiling_us
            && report.worst_p99_us <= p99_ceiling_us,
    }
}

/// Fails on a violated wall-clock gate.
pub fn enforce_gates(gates: &GateOutcome) -> Result<(), BenchError> {
    if !gates.throughput_holds_floor {
        return Err(BenchError::Failed(format!(
            "sustained throughput {:.0} req/s fell below the committed floor {:.0} req/s",
            gates.sustained_throughput_per_sec, gates.throughput_floor_per_sec
        )));
    }
    if !gates.latency_holds_ceilings {
        return Err(BenchError::Failed(format!(
            "wall latency p50 {} us / p99 {} us exceeded the committed ceilings \
             {} us / {} us",
            gates.worst_p50_us, gates.worst_p99_us, gates.p50_ceiling_us, gates.p99_ceiling_us
        )));
    }
    Ok(())
}

/// Writes the machine-readable sweep ([`SCHEMA`]) to [`REPORT_PATH`].
pub fn write_json(
    report: &ServingReport,
    gates: &GateOutcome,
    generated_by: &str,
) -> Result<(), BenchError> {
    let document = Json::object(vec![
        ("schema", Json::str(SCHEMA)),
        ("report", Json::str("serving-load")),
        ("generated_by", Json::str(generated_by)),
        ("quick_mode", Json::Bool(report.quick)),
        ("bit_identity", Json::str("bit-identical")),
        (
            "bit_identity_checks",
            Json::Int(report.bit_identity_checks as i64),
        ),
        (
            "gates",
            Json::object(vec![
                (
                    "throughput_floor_per_sec",
                    Json::Fixed(gates.throughput_floor_per_sec, 0),
                ),
                (
                    "sustained_throughput_per_sec",
                    Json::Fixed(gates.sustained_throughput_per_sec, 1),
                ),
                (
                    "throughput_holds_floor",
                    Json::Bool(gates.throughput_holds_floor),
                ),
                ("p50_ceiling_us", Json::Int(gates.p50_ceiling_us as i64)),
                ("p99_ceiling_us", Json::Int(gates.p99_ceiling_us as i64)),
                ("worst_p50_us", Json::Int(gates.worst_p50_us as i64)),
                ("worst_p99_us", Json::Int(gates.worst_p99_us as i64)),
                (
                    "latency_holds_ceilings",
                    Json::Bool(gates.latency_holds_ceilings),
                ),
                (
                    "max_coalesce_wait_us",
                    Json::Int(gates.max_coalesce_wait_us as i64),
                ),
            ]),
        ),
        (
            "points",
            Json::Array(
                report
                    .points
                    .iter()
                    .map(|point| {
                        Json::object(vec![
                            ("rate_per_sec", Json::Fixed(point.rate_per_sec, 0)),
                            ("max_batch", Json::Int(point.max_batch as i64)),
                            ("max_delay_us", Json::Int(point.max_delay_us as i64)),
                            ("shards", Json::Int(point.shards as i64)),
                            ("requests", Json::Int(point.requests as i64)),
                            ("served", Json::Int(point.served as i64)),
                            ("rejected", Json::Int(point.rejected as i64)),
                            ("batches", Json::Int(point.batches as i64)),
                            ("mean_batch", Json::Fixed(point.mean_batch, 2)),
                            ("largest_batch", Json::Int(point.largest_batch as i64)),
                            (
                                "max_coalesce_wait_us",
                                Json::Int(point.max_coalesce_wait_us as i64),
                            ),
                            ("virtual_p50_us", Json::Int(point.virtual_p50_us as i64)),
                            ("virtual_p99_us", Json::Int(point.virtual_p99_us as i64)),
                            ("wall_p50_us", Json::Int(point.wall_p50_us as i64)),
                            ("wall_p90_us", Json::Int(point.wall_p90_us as i64)),
                            ("wall_p99_us", Json::Int(point.wall_p99_us as i64)),
                            (
                                "wall_throughput_per_sec",
                                Json::Fixed(point.wall_throughput_per_sec, 1),
                            ),
                            ("busy_seconds", Json::Fixed(point.busy_seconds, 6)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(REPORT_PATH, document.render()).map_err(|source| BenchError::Io {
        path: REPORT_PATH.to_string(),
        source,
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_sweep_passes_its_deterministic_gates() {
        let spec = SweepSpec {
            rates: vec![4_000.0],
            policies: vec![(4, 300)],
            shards: vec![2],
            requests: 32,
        };
        let report = run_sweep(&spec, 42, true).expect("sweep runs");
        assert_eq!(report.points.len(), 1);
        let point = &report.points[0];
        assert_eq!(point.served + point.rejected, 32);
        assert!(report.bit_identity_checks >= point.served);
        assert!(point.max_coalesce_wait_us <= 300);
        assert!(report.sustained_throughput_per_sec > 0.0);
    }

    #[test]
    fn quick_mode_relaxes_the_gate_thresholds() {
        let base = ServingReport {
            points: Vec::new(),
            bit_identity_checks: 0,
            sustained_throughput_per_sec: 600.0,
            worst_p50_us: 60_000,
            worst_p99_us: 300_000,
            max_coalesce_wait_us: 0,
            quick: false,
        };
        let strict = gate_outcome(&base);
        assert!(!strict.throughput_holds_floor);
        assert!(!strict.latency_holds_ceilings);
        let relaxed = gate_outcome(&ServingReport {
            quick: true,
            ..base
        });
        assert!(relaxed.throughput_holds_floor);
        assert!(relaxed.latency_holds_ceilings);
        assert!(enforce_gates(&relaxed).is_ok());
        assert!(enforce_gates(&strict).is_err());
    }
}
