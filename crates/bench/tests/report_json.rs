//! Round-trip and escaping tests of the shared JSON writer behind the
//! structured experiment reports and the `BENCH_*.json` perf trajectories.
//!
//! There is no serde_json in the build container, so these tests include a
//! minimal strict JSON reader (objects, arrays, strings with escapes,
//! numbers, booleans, null) used to parse the writer's output back and
//! compare the decoded content — a genuine writer → parser round trip, not
//! a string comparison.

use optima_bench::json::Json;
use optima_bench::report::{Column, Report, Scalar, Table};

/// A minimal strict JSON value for round-trip checking.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(text: &'a str) -> Value {
        let mut parser = Parser::new(text);
        parser.skip_whitespace();
        let value = parser.parse_value();
        parser.skip_whitespace();
        assert_eq!(
            parser.pos,
            parser.bytes.len(),
            "trailing garbage after JSON"
        );
        value
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        b
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, token: &str) {
        assert!(
            self.bytes[self.pos..].starts_with(token.as_bytes()),
            "expected {token:?} at byte {}",
            self.pos
        );
        self.pos += token.len();
    }

    fn parse_value(&mut self) -> Value {
        match self.peek() {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Value::Str(self.parse_string()),
            b't' => {
                self.expect("true");
                Value::Bool(true)
            }
            b'f' => {
                self.expect("false");
                Value::Bool(false)
            }
            b'n' => {
                self.expect("null");
                Value::Null
            }
            _ => self.parse_number(),
        }
    }

    fn parse_object(&mut self) -> Value {
        self.expect("{");
        self.skip_whitespace();
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.bump();
            return Value::Object(fields);
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string();
            self.skip_whitespace();
            self.expect(":");
            self.skip_whitespace();
            fields.push((key, self.parse_value()));
            self.skip_whitespace();
            match self.bump() {
                b',' => continue,
                b'}' => return Value::Object(fields),
                other => panic!("unexpected byte {other:?} in object"),
            }
        }
    }

    fn parse_array(&mut self) -> Value {
        self.expect("[");
        self.skip_whitespace();
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.bump();
            return Value::Array(items);
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value());
            self.skip_whitespace();
            match self.bump() {
                b',' => continue,
                b']' => return Value::Array(items),
                other => panic!("unexpected byte {other:?} in array"),
            }
        }
    }

    fn parse_string(&mut self) -> String {
        assert_eq!(self.bump(), b'"', "expected a string");
        let mut out = String::new();
        loop {
            match self.bump() {
                b'"' => return out,
                b'\\' => match self.bump() {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let hex: String = (0..4).map(|_| self.bump() as char).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .unwrap_or_else(|_| panic!("bad \\u escape {hex:?}"));
                        out.push(char::from_u32(code).expect("valid BMP code point"));
                    }
                    other => panic!("unknown escape \\{}", other as char),
                },
                // Multi-byte UTF-8: recover the full character.
                b if b < 0x20 => panic!("raw control byte {b:#x} inside JSON string"),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_number(&mut self) -> Value {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Value::Number(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }
}

fn field<'v>(value: &'v Value, key: &str) -> &'v Value {
    match value {
        Value::Object(fields) => {
            &fields
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing field {key:?}"))
                .1
        }
        other => panic!("expected an object, got {other:?}"),
    }
}

#[test]
fn report_json_round_trips_through_a_strict_parser() {
    // Strings chosen to hit every escape class: quotes, backslashes,
    // newlines, tabs, raw control characters and non-ASCII text.
    let nasty = "he said \"x\\y\"\nline2\ttab\u{01}bell é τ0";
    let mut table = Table::new(vec![Column::unit("tau0", "ns"), Column::plain(nasty)]);
    table.push_row(vec![Scalar::Float(0.16, 2), Scalar::text(nasty)]);
    table.push_row(vec![Scalar::Int(-7), Scalar::Suffixed(101.4, 0, "x")]);
    let mut report = Report::new();
    report
        .heading(1, "Title with \\ and \"quotes\"")
        .blank()
        .note(nasty)
        .metric("worst error", Scalar::Float(0.88, 2), Some("mV"))
        .hidden_metric("nan_metric", Scalar::Float(f64::NAN, 3), None)
        .table(table);

    let rendered = report.to_json().render();
    let parsed = Parser::parse_document(&rendered);

    let items = match &parsed {
        Value::Array(items) => items,
        other => panic!("expected a top-level array, got {other:?}"),
    };
    // Blank lines are layout-only: heading, note, 2 metrics, table.
    assert_eq!(items.len(), 5);

    assert_eq!(
        field(&items[0], "text"),
        &Value::Str("Title with \\ and \"quotes\"".to_string())
    );
    // The nasty note string survives the escape → unescape round trip.
    assert_eq!(field(&items[1], "text"), &Value::Str(nasty.to_string()));
    assert_eq!(
        field(&items[2], "key"),
        &Value::Str("worst error".to_string())
    );
    assert_eq!(field(&items[2], "value"), &Value::Number(0.88));
    assert_eq!(field(&items[2], "unit"), &Value::Str("mV".to_string()));
    // Non-finite metric values have no JSON representation: null.
    assert_eq!(field(&items[3], "value"), &Value::Null);

    let rows = match field(&items[4], "rows") {
        Value::Array(rows) => rows,
        other => panic!("expected rows array, got {other:?}"),
    };
    assert_eq!(rows.len(), 2);
    match &rows[0] {
        Value::Array(cells) => {
            assert_eq!(cells[0], Value::Number(0.16));
            assert_eq!(cells[1], Value::Str(nasty.to_string()));
        }
        other => panic!("expected a cell array, got {other:?}"),
    }
    // Suffixed scalars keep a numeric value and preserve the (trimmed)
    // suffix, which may carry a per-cell unit.
    match &rows[1] {
        Value::Array(cells) => {
            assert_eq!(cells[0], Value::Number(-7.0));
            assert_eq!(field(&cells[1], "value"), &Value::Number(101.0));
            assert_eq!(field(&cells[1], "suffix"), &Value::Str("x".to_string()));
        }
        other => panic!("expected a cell array, got {other:?}"),
    }

    // Column units round-trip as string-or-null.
    let columns = match field(&items[4], "columns") {
        Value::Array(columns) => columns,
        other => panic!("expected columns array, got {other:?}"),
    };
    assert_eq!(field(&columns[0], "unit"), &Value::Str("ns".to_string()));
    assert_eq!(field(&columns[1], "unit"), &Value::Null);
    assert_eq!(field(&columns[1], "name"), &Value::Str(nasty.to_string()));
}

#[test]
fn bench_report_shaped_documents_round_trip() {
    // The envelope shape of BENCH_dnn.json / BENCH_analog.json.
    let document = Json::object(vec![
        ("report", Json::str("dnn-inference-hot-path")),
        ("quick_mode", Json::Bool(true)),
        ("quantized_equivalence", Json::str("bit-identical")),
        (
            "workloads",
            Json::Array(vec![Json::object(vec![
                ("name", Json::str("conv2d_forward")),
                ("iterations", Json::Int(30)),
                ("baseline_seconds", Json::Fixed(0.123456789, 6)),
                ("speedup", Json::Fixed(8.7, 2)),
            ])]),
        ),
    ]);
    let parsed = Parser::parse_document(&document.render());
    assert_eq!(
        field(&parsed, "quantized_equivalence"),
        &Value::Str("bit-identical".to_string())
    );
    let workloads = match field(&parsed, "workloads") {
        Value::Array(workloads) => workloads,
        other => panic!("expected workloads array, got {other:?}"),
    };
    // Fixed-precision floats are truncated to their declared decimals.
    assert_eq!(
        field(&workloads[0], "baseline_seconds"),
        &Value::Number(0.123457)
    );
    assert_eq!(field(&workloads[0], "iterations"), &Value::Number(30.0));
}

#[test]
fn empty_reports_are_detectable() {
    let report = Report::new();
    assert!(report.is_empty());
    assert_eq!(report.to_json().render(), "[]\n");
}
