//! Structural invariants of the unified experiment API: the registry, the
//! shim binaries and the generated DESIGN.md index must stay in lock-step.

use optima_bench::experiments::{design_md, find, registry};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// The `src/bin` entries that are not experiment shims: the multiplexed
/// runner itself and the perf-trajectory reporter.
const NON_SHIM_BINARIES: &[&str] = &["optima", "bench_report"];

fn shim_binary_names() -> BTreeSet<String> {
    let bin_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    std::fs::read_dir(&bin_dir)
        .expect("src/bin is readable")
        .map(|entry| entry.expect("directory entry is readable").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "rs"))
        .map(|path| {
            path.file_stem()
                .expect("binary file has a stem")
                .to_string_lossy()
                .into_owned()
        })
        .filter(|name| !NON_SHIM_BINARIES.contains(&name.as_str()))
        .collect()
}

#[test]
fn every_shim_binary_has_a_registered_experiment_and_vice_versa() {
    let shims = shim_binary_names();
    let registered: BTreeSet<String> = registry().iter().map(|e| e.name().to_string()).collect();
    assert_eq!(
        shims, registered,
        "src/bin shims and the experiment registry must be a bijection \
         (left: shims, right: registry)"
    );
}

#[test]
fn registry_names_are_unique() {
    let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
    let unique: BTreeSet<&str> = names.iter().copied().collect();
    assert_eq!(names.len(), unique.len(), "duplicate experiment names");
}

#[test]
fn registry_covers_all_paper_experiments_and_ablations() {
    let registered: BTreeSet<&str> = registry().iter().map(|e| e.name()).collect();
    for name in [
        "fig1_sota",
        "fig4_nonideality",
        "fig5_pvt",
        "fig6_model_eval",
        "fig7_dse",
        "fig8_corner_pvt",
        "table1_corners",
        "table2_imagenet",
        "table3_cifar",
        "speedup",
        "snapshot_roundtrip",
    ] {
        assert!(registered.contains(name), "missing paper experiment {name}");
    }
    let ablations = registered
        .iter()
        .filter(|name| name.starts_with("ablation_"))
        .count();
    assert_eq!(ablations, 3, "expected exactly three ablations");
}

#[test]
fn every_experiment_is_self_describing() {
    for experiment in registry() {
        assert!(!experiment.name().is_empty());
        assert!(
            !experiment.description().is_empty(),
            "{} has no description",
            experiment.name()
        );
        assert!(
            !experiment.paper_ref().is_empty(),
            "{} has no paper reference",
            experiment.name()
        );
        assert!(
            find(experiment.name()).is_some_and(|found| std::ptr::eq(found, *experiment)),
            "find() must resolve {} to its registry entry",
            experiment.name()
        );
    }
}

#[test]
fn design_md_on_disk_matches_the_registry() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "DESIGN.md is missing at {} ({err}); regenerate it with \
             `cargo run -q -p optima_bench --bin optima -- design-md > DESIGN.md`",
            path.display()
        )
    });
    assert_eq!(
        on_disk,
        design_md(),
        "DESIGN.md has drifted from the experiment registry; regenerate it with \
         `cargo run -q -p optima_bench --bin optima -- design-md > DESIGN.md`"
    );
}
