//! Golden tests pinning the text renderer byte-for-byte to the
//! **pre-refactor** binary output (fast mode), captured before the
//! experiment logic moved out of `src/bin/*.rs` into the `Experiment`
//! modules.
//!
//! Machine-dependent tokens are masked on both sides before comparison:
//! worker-thread counts (the preamble lines print the host's parallelism)
//! and the wall-clock columns of the `speedup` table.  Every other byte —
//! headings, blank-line layout, table geometry and all deterministic
//! numbers — must match exactly.

use optima_bench::experiments::{find, ExperimentContext, Profile};
use std::path::PathBuf;

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.fast.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("golden file {} unreadable: {err}", path.display()))
}

fn run_fast(name: &str) -> String {
    let experiment = find(name).unwrap_or_else(|| panic!("{name} is not registered"));
    let mut ctx = ExperimentContext::new(Profile::Fast);
    experiment
        .run(&mut ctx)
        .unwrap_or_else(|err| panic!("{name} failed: {err}"))
        .render_text()
}

/// Masks every digit run in the line containing `marker` (used for the
/// thread-count preambles, which depend on the host's parallelism).
fn mask_line_digits(text: &str, marker: &str) -> String {
    text.lines()
        .map(|line| {
            if line.contains(marker) {
                line.chars()
                    .map(|c| if c.is_ascii_digit() { '#' } else { c })
                    .collect()
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn fig5_pvt_text_output_is_byte_identical_to_the_pre_refactor_binary() {
    // The preamble prints the worker-thread count; everything else is
    // deterministic at any thread count (sweep-engine guarantee).
    let expected = mask_line_digits(&golden("fig5_pvt"), "worker threads");
    let actual = mask_line_digits(&run_fast("fig5_pvt"), "worker threads");
    assert_eq!(actual, expected);
}

#[test]
fn table1_corners_text_output_is_byte_identical_to_the_pre_refactor_binary() {
    // Fully deterministic — not a single byte may differ.
    assert_eq!(run_fast("table1_corners"), golden("table1_corners"));
}

#[test]
fn speedup_text_output_matches_the_pre_refactor_binary_modulo_timings() {
    // The two workload rows carry wall-clock measurements; mask their
    // numeric cells (and the thread-count preamble) but pin every other
    // byte: headings, column layout, workload names and paper references.
    let mask = |text: &str| {
        let text = mask_line_digits(text, "sweep-engine threads");
        text.lines()
            .map(|line| {
                if line.starts_with("| input-space sweep")
                    || line.starts_with("| mismatch Monte Carlo")
                {
                    let cells: Vec<String> = line
                        .split(" | ")
                        .enumerate()
                        .map(|(i, cell)| {
                            // Cells 1-3 are circuit seconds, model seconds and
                            // the speed-up factor; cell 0 (workload + grid
                            // size) and cell 4 (paper value) stay exact.
                            if (1..=3).contains(&i) {
                                "<timing>".to_string()
                            } else {
                                cell.to_string()
                            }
                        })
                        .collect();
                    cells.join(" | ")
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    };
    assert_eq!(mask(&run_fast("speedup")), mask(&golden("speedup")));
}
