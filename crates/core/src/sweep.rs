//! Error-strict, deterministic parallel sweep engine.
//!
//! Every "evaluate a grid of corners" loop in the workspace — the 48-corner
//! design-space exploration (Fig. 7), the PVT and mismatch Monte-Carlo
//! sweeps (Fig. 8), the held-out model-evaluation grids (Fig. 6) and the
//! calibration dataset generation (Section IV) — shares the same shape:
//! a known, index-addressable list of independent work items whose results
//! must come back **complete** and **in order**.  This module provides that
//! shape once, with three guarantees:
//!
//! 1. **Error strictness** — a failing item aborts the sweep with a
//!    [`SweepError`] naming the *lowest* failing index; results are never
//!    silently dropped.  (The historical bug this replaces: the design-space
//!    explorer used `filter_map(|p| evaluate(p).ok())`, so paper figures
//!    could quietly be computed over a subset of the design space.)
//! 2. **Determinism** — results are reassembled in item-index order from
//!    contiguous chunks, so the output is bit-identical regardless of the
//!    thread count.  For Monte-Carlo sweeps, [`stream_seed`] derives an
//!    independent RNG stream per item from a base seed, which keeps sampled
//!    results independent of how items are distributed over threads.
//! 3. **No panic swallowing** — worker panics are resumed on the caller
//!    thread instead of being converted into missing results.
//!
//! The thread count is an explicit knob everywhere (`0` = automatic); the
//! automatic count honours the `OPTIMA_SWEEP_THREADS` environment variable
//! and otherwise uses [`std::thread::available_parallelism`].

use std::fmt;

/// Environment variable overriding the automatic sweep thread count.
pub const THREADS_ENV_VAR: &str = "OPTIMA_SWEEP_THREADS";

/// Failure of one sweep item: its index plus the underlying error.
///
/// When several items fail, the reported index is the lowest one, which is
/// also the index a single-threaded sweep would have stopped at — the error
/// is therefore deterministic regardless of the thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError<E> {
    /// Zero-based index of the failing item in the swept slice.
    pub index: usize,
    /// The error produced by that item.
    pub source: E,
}

impl<E: fmt::Display> fmt::Display for SweepError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep item {} failed: {}", self.index, self.source)
    }
}

impl<E: std::error::Error + 'static> std::error::Error for SweepError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The automatic sweep thread count: `OPTIMA_SWEEP_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed >= 1 {
                return parsed;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread knob: `0` means automatic.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// Derives an independent RNG seed for sweep item `index` from `base_seed`.
///
/// Uses the SplitMix64 finalizer, so consecutive indices yield uncorrelated
/// streams.  Seeding one RNG per item (instead of threading a single RNG
/// through the sweep) is what makes Monte-Carlo sweeps bit-identical at any
/// thread count.
///
/// Delegates to [`optima_math::seed::stream_seed`] (bit-identical to the
/// historic local implementation), so the sweep engine and the circuit-level
/// defect sampler derive their streams from the same permutation.
pub fn stream_seed(base_seed: u64, index: u64) -> u64 {
    optima_math::seed::stream_seed(base_seed, index)
}

/// Maps `f` over `items` in parallel, failing on the first (lowest-index)
/// error and returning results in item order.
///
/// `f` receives the item's index and a reference to the item; `threads = 0`
/// selects the automatic thread count.  Items are split into contiguous
/// chunks (one per worker) and reassembled by chunk order, so the result is
/// bit-identical for any thread count.  A worker that hits an error stops
/// its chunk immediately; the sweep then reports the error with the lowest
/// item index across all workers.
///
/// # Errors
///
/// Returns [`SweepError`] wrapping the first failing item's error.
///
/// # Panics
///
/// Re-raises panics from worker threads on the calling thread.
pub fn par_map_sweep<I, O, E, F>(items: &[I], threads: usize, f: F) -> Result<Vec<O>, SweepError<E>>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(usize, &I) -> Result<O, E> + Sync,
{
    par_map_sweep_with(items, threads, || (), |_, index, item| f(index, item))
}

/// [`par_map_sweep`] with per-worker mutable state.
///
/// `init` runs **once on each worker thread** (and once on the calling
/// thread for a serial sweep); the state it builds is handed `&mut` to
/// every invocation of `f` on that worker.  This is how per-thread scratch
/// arenas (e.g. the DNN evaluator's `KernelScratch`) are threaded through a
/// sweep without locking: each worker reuses one arena across its whole
/// contiguous chunk, so the steady state allocates nothing per item.
///
/// Chunking, ordering, error selection and panic behaviour are identical to
/// [`par_map_sweep`] — the state cannot influence which items a worker
/// sees, so determinism is preserved whenever `f`'s *result* is independent
/// of the state's history (true for pure scratch buffers).
///
/// # Errors
///
/// Returns [`SweepError`] wrapping the first failing item's error.
///
/// # Panics
///
/// Re-raises panics from worker threads on the calling thread.
pub fn par_map_sweep_with<I, O, E, S, N, F>(
    items: &[I],
    threads: usize,
    init: N,
    f: F,
) -> Result<Vec<O>, SweepError<E>>
where
    I: Sync,
    O: Send,
    E: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> Result<O, E> + Sync,
{
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let threads = resolve_threads(threads).min(items.len());
    if threads == 1 {
        let mut state = init();
        let mut results = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            results
                .push(f(&mut state, index, item).map_err(|source| SweepError { index, source })?);
        }
        return Ok(results);
    }

    let chunk_size = items.len().div_ceil(threads);
    let chunk_results: Vec<Result<Vec<O>, SweepError<E>>> = std::thread::scope(|scope| {
        let f = &f;
        let init = &init;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk_index, chunk)| {
                scope.spawn(move || {
                    let base = chunk_index * chunk_size;
                    let mut state = init();
                    let mut chunk_out = Vec::with_capacity(chunk.len());
                    for (offset, item) in chunk.iter().enumerate() {
                        let index = base + offset;
                        match f(&mut state, index, item) {
                            Ok(value) => chunk_out.push(value),
                            Err(source) => return Err(SweepError { index, source }),
                        }
                    }
                    Ok(chunk_out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    // Chunks are in index order, so the first error seen is the one with the
    // lowest failing index — the same error a serial sweep would report.
    let mut results = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        results.extend(chunk?);
    }
    Ok(results)
}

/// Infallible variant of [`par_map_sweep`] for closures that cannot fail.
///
/// # Panics
///
/// Re-raises panics from worker threads on the calling thread.
pub fn par_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    match par_map_sweep(items, threads, |index, item| {
        Ok::<O, std::convert::Infallible>(f(index, item))
    }) {
        Ok(results) => results,
        Err(impossible) => match impossible.source {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let out = par_map_sweep(&items, threads, |_, &x| Ok::<_, String>(x * x)).unwrap();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map_sweep(&[] as &[u64], 8, |_, &x| Ok::<_, String>(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn reports_the_lowest_failing_index_regardless_of_threads() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 7, 16] {
            let err = par_map_sweep(&items, threads, |_, &x| {
                if x == 23 || x == 41 {
                    Err(format!("item {x} broke"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err.index, 23, "threads = {threads}");
            assert_eq!(err.source, "item 23 broke");
        }
    }

    #[test]
    fn closure_receives_matching_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = par_map(&items, 2, |index, &item| format!("{index}:{item}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn per_worker_state_is_initialised_once_per_worker_and_reused() {
        let items: Vec<u64> = (0..40).collect();
        let expected: Vec<u64> = items.iter().map(|x| x + 1).collect();
        for threads in [1, 3, 8] {
            // Each worker's state counts how many items it processed; the
            // counts must sum to the item count (every item touched exactly
            // one worker's state) and the results stay in order.
            let touched = std::sync::atomic::AtomicUsize::new(0);
            let out = par_map_sweep_with(
                &items,
                threads,
                || 0usize,
                |state, _, &x| {
                    *state += 1;
                    touched.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Ok::<_, String>(x + 1)
                },
            )
            .unwrap();
            assert_eq!(out, expected, "threads = {threads}");
            assert_eq!(
                touched.load(std::sync::atomic::Ordering::Relaxed),
                items.len()
            );
        }
    }

    #[test]
    fn stateful_sweep_reports_the_lowest_failing_index() {
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4, 11] {
            let err = par_map_sweep_with(&items, threads, Vec::<usize>::new, |seen, _, &x| {
                seen.push(x);
                if x % 13 == 12 {
                    Err(format!("item {x} broke"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err.index, 12, "threads = {threads}");
        }
    }

    #[test]
    fn sweep_error_displays_index_and_source() {
        let err = SweepError {
            index: 7,
            source: "boom".to_string(),
        };
        assert_eq!(err.to_string(), "sweep item 7 failed: boom");
    }

    #[test]
    fn stream_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..1000).map(|i| stream_seed(0xf188, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must not collide");
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 2));
    }

    #[test]
    fn resolve_threads_maps_zero_to_automatic() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, 4, |_, &x| {
                if x == 5 {
                    panic!("worker exploded");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
