//! Calibration of the OPTIMA models against golden-reference circuit simulation.
//!
//! This reproduces the workflow of Section IV of the paper:
//!
//! 1. **Execute thorough multi-corner circuit simulations** — transient
//!    discharge sweeps over word-line voltage, supply voltage, temperature
//!    and transistor mismatch using [`optima_circuit::transient`].
//! 2. **Develop behavioural models** — least-squares fits of the polynomial
//!    models of Eqs. 3–8 to that data ([`optima_math::lsq`]).
//! 3. **Incorporate the models into a discrete-time simulation framework** —
//!    the fitted [`ModelSuite`] feeds [`crate::simulator`] and the multiplier
//!    case study in `optima-imc`.

use crate::backend::DischargeBackend;
use crate::error::ModelError;
use crate::model::discharge::DischargeModel;
use crate::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use crate::model::mismatch::MismatchSigmaModel;
use crate::model::suite::ModelSuite;
use crate::model::supply::SupplyModel;
use crate::model::temperature::TemperatureModel;
use crate::sweep::par_map_sweep;
use optima_circuit::montecarlo::MismatchModel;
use optima_circuit::pvt::{linspace, PvtConditions};
use optima_circuit::technology::Technology;
use optima_circuit::transient::{DischargeStimulus, TransientSimulator};
use optima_math::lsq::{polynomial_fit, SeparableFit};
use optima_math::stats;
use optima_math::units::{Celsius, Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Polynomial degrees of the fitted models (the paper's choices by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDegrees {
    /// Degree of `p(V_od)` in Eq. 3 (paper: 4).
    pub overdrive: usize,
    /// Degree of `p(t)` in Eq. 3 (paper: 2).
    pub time: usize,
    /// Degree of `p(ΔV_DD)` in Eq. 4 (paper: 2).
    pub supply: usize,
    /// Degree of `p(V_WL)` in Eq. 5 (paper: 3).
    pub temperature: usize,
    /// Degree of `p(t)` in Eq. 6 (paper: 3).
    pub mismatch_time: usize,
    /// Degree of `p(V_WL)` in Eq. 6 (paper: 3).
    pub mismatch_wordline: usize,
    /// Degree of `p(V_DD)` in Eq. 7 (paper: 2).
    pub write_vdd: usize,
    /// Degree of `p(T)` in Eq. 7 (paper: 1).
    pub write_temperature: usize,
    /// Degree of `p(V_DD)` in Eq. 8 (paper: 1).
    pub discharge_energy_vdd: usize,
    /// Degree of `p(ΔV_BL)` in Eq. 8 (paper: 3).
    pub discharge_energy_delta: usize,
    /// Degree of `p(T)` in Eq. 8 (paper: 1).
    pub discharge_energy_temperature: usize,
}

impl Default for ModelDegrees {
    fn default() -> Self {
        ModelDegrees {
            overdrive: 4,
            time: 2,
            supply: 2,
            temperature: 3,
            mismatch_time: 3,
            mismatch_wordline: 3,
            write_vdd: 2,
            write_temperature: 1,
            discharge_energy_vdd: 1,
            discharge_energy_delta: 3,
            discharge_energy_temperature: 1,
        }
    }
}

/// Configuration of the calibration sweep grids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Word-line voltages of the basic discharge sweep (volts).
    pub wordline_voltages: Vec<f64>,
    /// Number of time samples extracted from every simulated waveform.
    pub time_samples: usize,
    /// Duration of every discharge transient.
    pub max_time: Seconds,
    /// Supply voltages of the Eq. 4 sweep (volts).
    pub supply_voltages: Vec<f64>,
    /// Temperatures of the Eq. 5 sweep (°C).
    pub temperatures: Vec<f64>,
    /// Word-line voltages used for the supply/temperature/mismatch sweeps
    /// (a subset keeps the calibration fast).
    pub secondary_wordline_voltages: Vec<f64>,
    /// Number of Monte Carlo samples per grid point for the Eq. 6 fit.
    pub mismatch_samples: usize,
    /// Number of time grid points for the Eq. 6 fit.
    pub mismatch_time_points: usize,
    /// RNG seed for the mismatch sampling.
    pub seed: u64,
    /// Number of cells attached to the simulated bit-line.
    pub cells_on_bitline: usize,
    /// Integration steps of the golden-reference transient solver.
    pub reference_time_steps: usize,
    /// Polynomial degrees of all models.
    pub degrees: ModelDegrees,
    /// Worker threads of the calibration sweeps (`0` = automatic, see
    /// [`optima_core::sweep::default_threads`](crate::sweep::default_threads)).
    /// The fitted models are bit-identical for any thread count.
    pub threads: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            wordline_voltages: linspace(0.35, 1.0, 14),
            time_samples: 32,
            max_time: Seconds(2e-9),
            supply_voltages: linspace(0.9, 1.1, 5),
            temperatures: vec![-40.0, 0.0, 25.0, 75.0, 125.0],
            secondary_wordline_voltages: linspace(0.45, 1.0, 6),
            mismatch_samples: 150,
            mismatch_time_points: 8,
            seed: 0x517e_ca11,
            cells_on_bitline: 16,
            reference_time_steps: 400,
            degrees: ModelDegrees::default(),
            threads: 0,
        }
    }
}

impl CalibrationConfig {
    /// A reduced configuration for unit tests and quick experiments
    /// (coarser grids, fewer Monte Carlo samples).
    pub fn fast() -> Self {
        CalibrationConfig {
            // Keep the same lower word-line bound as the default grid so that
            // models calibrated with the fast grid still cover the paper's
            // V_DAC,0 = 0.3 V design corners.
            wordline_voltages: linspace(0.3, 1.0, 8),
            time_samples: 16,
            supply_voltages: linspace(0.9, 1.1, 3),
            temperatures: vec![0.0, 25.0, 75.0],
            secondary_wordline_voltages: linspace(0.5, 1.0, 4),
            mismatch_samples: 40,
            mismatch_time_points: 5,
            reference_time_steps: 200,
            ..CalibrationConfig::default()
        }
    }
}

/// Training-residual summary of one calibration run.
///
/// The held-out evaluation equivalent of the paper's Fig. 6 numbers is
/// produced by [`crate::evaluation::ModelEvaluator::rms_errors`]; the values
/// here are the residuals on the *training* grid and serve as a quick sanity
/// check that each fit converged.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// RMS residual of the basic discharge fit (millivolts).
    pub basic_discharge_rms_mv: f64,
    /// RMS residual of the supply-corrected model (millivolts).
    pub supply_rms_mv: f64,
    /// RMS residual of the temperature-corrected model (millivolts).
    pub temperature_rms_mv: f64,
    /// RMS residual of the mismatch σ fit (millivolts).
    pub mismatch_sigma_rms_mv: f64,
    /// RMS residual of the write-energy fit (femtojoules).
    pub write_energy_rms_fj: f64,
    /// RMS residual of the discharge-energy fit (femtojoules).
    pub discharge_energy_rms_fj: f64,
    /// Number of transient circuit simulations executed during calibration.
    pub circuit_simulations: usize,
    /// Number of scalar training samples used across all fits.
    pub training_samples: usize,
}

/// Result of a calibration run: the fitted models plus the training report.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    models: ModelSuite,
    report: CalibrationReport,
}

impl CalibrationOutcome {
    /// Reassembles an outcome from its parts (used by snapshot loading and
    /// by tests that construct hand-made outcomes).
    pub fn from_parts(models: ModelSuite, report: CalibrationReport) -> Self {
        CalibrationOutcome { models, report }
    }

    /// The fitted model suite.
    pub fn models(&self) -> &ModelSuite {
        &self.models
    }

    /// Consumes the outcome and returns the fitted model suite.
    pub fn into_models(self) -> ModelSuite {
        self.models
    }

    /// The training-residual report.
    pub fn report(&self) -> &CalibrationReport {
        &self.report
    }
}

/// Runs circuit-simulation sweeps and fits the OPTIMA models.
#[derive(Debug, Clone)]
pub struct Calibrator {
    technology: Technology,
    config: CalibrationConfig,
}

impl Calibrator {
    /// Creates a calibrator for the given technology and sweep configuration.
    pub fn new(technology: Technology, config: CalibrationConfig) -> Self {
        Calibrator { technology, config }
    }

    /// The sweep configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// The technology being calibrated.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Runs the full calibration: circuit sweeps, least-squares fits,
    /// residual reporting.
    ///
    /// All deterministic reference data (waveform samples, deltas, energies)
    /// is acquired through the [`DischargeBackend`] interface of the golden
    /// simulator — the same interface the fitted models implement — so the
    /// residuals measured here and the held-out errors of
    /// [`crate::evaluation::ModelEvaluator`] are defined against one
    /// contract.  Only the Eq. 6 mismatch Monte Carlo bypasses the trait
    /// (per-instance [`optima_circuit::montecarlo::MismatchSample`]s have no
    /// fitted-side equivalent).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CalibrationFailed`] when a fit cannot be
    /// performed (degenerate grids) and propagates circuit/numeric errors.
    pub fn run(&self) -> Result<CalibrationOutcome, ModelError> {
        let simulator = TransientSimulator::new(self.technology.clone());
        let nominal = PvtConditions::nominal(&self.technology);
        let mut report = CalibrationReport::default();

        let discharge = self.fit_discharge(&simulator, &nominal, &mut report)?;
        let supply = self.fit_supply(&simulator, &nominal, &discharge, &mut report)?;
        let temperature =
            self.fit_temperature(&simulator, &nominal, &discharge, &supply, &mut report)?;
        let mismatch = self.fit_mismatch(&simulator, &nominal, &mut report)?;
        let write_energy = self.fit_write_energy(&simulator, &nominal, &mut report)?;
        let discharge_energy = self.fit_discharge_energy(&simulator, &nominal, &mut report)?;

        let models = ModelSuite::new(
            discharge,
            supply,
            temperature,
            mismatch,
            write_energy,
            discharge_energy,
        );
        Ok(CalibrationOutcome { models, report })
    }

    /// Time grid (seconds) at which every waveform is sampled, excluding `t = 0`.
    fn time_grid(&self) -> Vec<f64> {
        let n = self.config.time_samples.max(2);
        (1..=n)
            .map(|i| self.config.max_time.0 * i as f64 / n as f64)
            .collect()
    }

    /// The [`time_grid`](Calibrator::time_grid) as typed seconds, the form
    /// the [`DischargeBackend`] interface consumes.
    fn time_grid_seconds(&self) -> Vec<Seconds> {
        self.time_grid().into_iter().map(Seconds).collect()
    }

    fn stimulus(&self, v_wl: f64) -> DischargeStimulus {
        DischargeStimulus {
            word_line_voltage: Volts(v_wl),
            stored_bit: true,
            duration: self.config.max_time,
            cells_on_bitline: self.config.cells_on_bitline,
            time_steps: self.config.reference_time_steps,
        }
    }

    /// Eq. 3: separable fit of `V_BL − V_DD` over `(V_od, t)`.
    fn fit_discharge(
        &self,
        simulator: &TransientSimulator,
        nominal: &PvtConditions,
        report: &mut CalibrationReport,
    ) -> Result<DischargeModel, ModelError> {
        let vth = self.technology.nmos_vth.0;
        let times = self.time_grid();
        let sample_times = self.time_grid_seconds();

        // One transient simulation per word-line voltage (one waveform query
        // through the discharge-backend interface), swept in parallel; rows
        // are reassembled in grid order so the fit input (and thus the
        // fitted model) is bit-identical at any thread count.
        let rows = par_map_sweep(
            &self.config.wordline_voltages,
            self.config.threads,
            |_, &v_wl| {
                let voltages =
                    simulator.bitline_voltages(&self.stimulus(v_wl), nominal, &sample_times)?;
                let row: Vec<_> = times
                    .iter()
                    .zip(&voltages)
                    .map(|(&t, &v)| (v_wl - vth, t * 1e9, v - nominal.vdd.0))
                    .collect();
                Ok::<_, ModelError>(row)
            },
        )
        .map_err(|err| {
            let item = format!(
                "discharge sweep V_WL = {} V",
                self.config.wordline_voltages[err.index]
            );
            ModelError::from_sweep(err, item)
        })?;
        report.circuit_simulations += self.config.wordline_voltages.len();

        let mut overdrives = Vec::new();
        let mut time_ns = Vec::new();
        let mut drops = Vec::new();
        for (overdrive, t, drop) in rows.into_iter().flatten() {
            overdrives.push(overdrive);
            time_ns.push(t);
            drops.push(drop);
        }
        report.training_samples += drops.len();

        let fit = SeparableFit::fit(
            &overdrives,
            &time_ns,
            &drops,
            self.config.degrees.overdrive,
            self.config.degrees.time,
            10,
        )
        .map_err(|err| ModelError::CalibrationFailed {
            model: "discharge (Eq. 3)".to_string(),
            reason: err.to_string(),
        })?;
        report.basic_discharge_rms_mv = fit.residual_rms() * 1e3;

        let vwl_lo = self
            .config
            .wordline_voltages
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let vwl_hi = self
            .config
            .wordline_voltages
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(DischargeModel::new(
            nominal.vdd,
            Volts(vth),
            fit.factor_x().clone(),
            fit.factor_y().clone(),
            (0.0, self.config.max_time.0 * 1e9),
            (vwl_lo, vwl_hi),
        ))
    }

    /// Eq. 4: fit the multiplicative `p2(ΔV_DD)` correction.
    fn fit_supply(
        &self,
        simulator: &TransientSimulator,
        nominal: &PvtConditions,
        discharge: &DischargeModel,
        report: &mut CalibrationReport,
    ) -> Result<SupplyModel, ModelError> {
        let times = self.time_grid();
        let grid: Vec<(f64, f64)> = self
            .config
            .supply_voltages
            .iter()
            .flat_map(|&vdd| {
                self.config
                    .secondary_wordline_voltages
                    .iter()
                    .map(move |&v_wl| (vdd, v_wl))
            })
            .collect();

        let sample_times = self.time_grid_seconds();
        let rows = par_map_sweep(&grid, self.config.threads, |_, &(vdd, v_wl)| {
            let pvt = nominal.with_vdd(Volts(vdd));
            let voltages = simulator.bitline_voltages(&self.stimulus(v_wl), &pvt, &sample_times)?;
            let mut row = Vec::with_capacity(times.len());
            for (&t, &v_circuit) in times.iter().zip(&voltages) {
                let v_base = discharge.bitline_voltage_unchecked(Seconds(t), Volts(v_wl));
                if v_base > 0.05 {
                    row.push((vdd - nominal.vdd.0, v_circuit / v_base, v_circuit, v_base));
                }
            }
            Ok::<_, ModelError>(row)
        })
        .map_err(|err| {
            let (vdd, v_wl) = grid[err.index];
            ModelError::from_sweep(err, format!("supply sweep V_DD = {vdd} V, V_WL = {v_wl} V"))
        })?;
        report.circuit_simulations += grid.len();

        let mut delta_vdds = Vec::new();
        let mut ratios = Vec::new();
        let mut reference = Vec::new();
        let mut predicted_base = Vec::new();
        for (delta_vdd, ratio, v_circuit, v_base) in rows.into_iter().flatten() {
            delta_vdds.push(delta_vdd);
            ratios.push(ratio);
            reference.push(v_circuit);
            predicted_base.push(v_base);
        }
        report.training_samples += ratios.len();

        let correction =
            polynomial_fit(&delta_vdds, &ratios, self.config.degrees.supply).map_err(|err| {
                ModelError::CalibrationFailed {
                    model: "supply (Eq. 4)".to_string(),
                    reason: err.to_string(),
                }
            })?;

        // Training residual of the corrected model, in mV.
        let residuals: Vec<f64> = reference
            .iter()
            .zip(predicted_base.iter())
            .zip(delta_vdds.iter())
            .map(|((v_ref, v_base), dv)| v_ref - v_base * correction.eval(*dv))
            .collect();
        report.supply_rms_mv = stats::rms(&residuals) * 1e3;

        let lo = self
            .config
            .supply_voltages
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .config
            .supply_voltages
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(SupplyModel::new(nominal.vdd, correction, (lo, hi)))
    }

    /// Eq. 5: fit the additive temperature sensitivity `p3(V_WL)`.
    fn fit_temperature(
        &self,
        simulator: &TransientSimulator,
        nominal: &PvtConditions,
        discharge: &DischargeModel,
        supply: &SupplyModel,
        report: &mut CalibrationReport,
    ) -> Result<TemperatureModel, ModelError> {
        let times = self.time_grid();
        let t_nominal = self.technology.temperature_nominal.0;
        let grid: Vec<(f64, f64)> = self
            .config
            .temperatures
            .iter()
            .flat_map(|&temp| {
                self.config
                    .secondary_wordline_voltages
                    .iter()
                    .map(move |&v_wl| (temp, v_wl))
            })
            .collect();

        // Per sample: (v_circuit, v_model, t_ns, ΔT, v_wl).
        let sample_times = self.time_grid_seconds();
        let rows = par_map_sweep(&grid, self.config.threads, |_, &(temp, v_wl)| {
            let delta_t = temp - t_nominal;
            let pvt = nominal.with_temperature(Celsius(temp));
            let voltages = simulator.bitline_voltages(&self.stimulus(v_wl), &pvt, &sample_times)?;
            let mut row = Vec::with_capacity(times.len());
            for (&t, &v_circuit) in times.iter().zip(&voltages) {
                let base = discharge.bitline_voltage_unchecked(Seconds(t), Volts(v_wl));
                let v_model = supply.apply(base, nominal.vdd);
                row.push((v_circuit, v_model, t * 1e9, delta_t, v_wl));
            }
            Ok::<_, ModelError>(row)
        })
        .map_err(|err| {
            let (temp, v_wl) = grid[err.index];
            ModelError::from_sweep(
                err,
                format!("temperature sweep T = {temp} degC, V_WL = {v_wl} V"),
            )
        })?;
        report.circuit_simulations += grid.len();

        let samples: Vec<(f64, f64, f64, f64, f64)> = rows.into_iter().flatten().collect();
        let mut wordlines = Vec::new();
        let mut scaled_residuals = Vec::new();
        for &(v_circuit, v_model, t_ns, delta_t, v_wl) in &samples {
            // Only use samples with a meaningful scale factor for the fit.
            if delta_t.abs() > 1.0 && t_ns > 0.2 {
                wordlines.push(v_wl);
                scaled_residuals.push((v_circuit - v_model) / (t_ns * delta_t));
            }
        }
        report.training_samples += wordlines.len();

        let sensitivity = polynomial_fit(
            &wordlines,
            &scaled_residuals,
            self.config.degrees.temperature,
        )
        .map_err(|err| ModelError::CalibrationFailed {
            model: "temperature (Eq. 5)".to_string(),
            reason: err.to_string(),
        })?;

        let residuals: Vec<f64> = samples
            .iter()
            .map(|&(v_ref, v_model, t_ns, delta_t, v_wl)| {
                v_ref - (v_model + t_ns * delta_t * sensitivity.eval(v_wl))
            })
            .collect();
        report.temperature_rms_mv = stats::rms(&residuals) * 1e3;

        let lo = self
            .config
            .temperatures
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .config
            .temperatures
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(TemperatureModel::new(
            Celsius(t_nominal),
            sensitivity,
            (lo, hi),
        ))
    }

    /// Eq. 6: Monte Carlo sweep and separable fit of the σ surface.
    fn fit_mismatch(
        &self,
        simulator: &TransientSimulator,
        nominal: &PvtConditions,
        report: &mut CalibrationReport,
    ) -> Result<MismatchSigmaModel, ModelError> {
        let mismatch_model = MismatchModel::from_technology(&self.technology);
        let n_time = self.config.mismatch_time_points.max(2);
        let times: Vec<f64> = (1..=n_time)
            .map(|i| self.config.max_time.0 * i as f64 / n_time as f64)
            .collect();

        // Each word-line grid point draws its own seeded Monte-Carlo stream
        // (seed + wl_index, as the serial code always did), so the sampled
        // waveforms — and therefore the fitted σ surface — do not depend on
        // how grid points are distributed over worker threads.
        let rows = par_map_sweep(
            &self.config.secondary_wordline_voltages,
            self.config.threads,
            |wl_index, &v_wl| {
                let samples = mismatch_model.sample_n(
                    self.config.mismatch_samples,
                    self.config.seed.wrapping_add(wl_index as u64),
                );
                // One waveform per mismatch sample; collect voltages at each grid time.
                let mut per_time: Vec<Vec<f64>> = vec![Vec::new(); times.len()];
                for sample in &samples {
                    let waveform =
                        simulator.discharge_waveform(&self.stimulus(v_wl), nominal, sample)?;
                    for (i, &t) in times.iter().enumerate() {
                        per_time[i].push(waveform.sample_at(Seconds(t))?.0);
                    }
                }
                let row: Vec<(f64, f64, f64)> = times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| (t * 1e9, v_wl, stats::std_dev(&per_time[i])))
                    .collect();
                Ok::<_, ModelError>(row)
            },
        )
        .map_err(|err| {
            let item = format!(
                "mismatch Monte-Carlo sweep V_WL = {} V",
                self.config.secondary_wordline_voltages[err.index]
            );
            ModelError::from_sweep(err, item)
        })?;
        report.circuit_simulations +=
            self.config.secondary_wordline_voltages.len() * self.config.mismatch_samples;

        let mut grid_time_ns = Vec::new();
        let mut grid_wordline = Vec::new();
        let mut grid_sigma = Vec::new();
        for (t_ns, v_wl, sigma) in rows.into_iter().flatten() {
            grid_time_ns.push(t_ns);
            grid_wordline.push(v_wl);
            grid_sigma.push(sigma);
        }
        report.training_samples += grid_sigma.len();

        let fit = SeparableFit::fit(
            &grid_time_ns,
            &grid_wordline,
            &grid_sigma,
            self.config.degrees.mismatch_time,
            self.config.degrees.mismatch_wordline,
            10,
        )
        .map_err(|err| ModelError::CalibrationFailed {
            model: "mismatch (Eq. 6)".to_string(),
            reason: err.to_string(),
        })?;
        report.mismatch_sigma_rms_mv = fit.residual_rms() * 1e3;

        Ok(MismatchSigmaModel::new(
            fit.factor_x().clone(),
            fit.factor_y().clone(),
        ))
    }

    /// Eq. 7: separable fit of the write energy over `(V_DD, T)`.
    fn fit_write_energy(
        &self,
        simulator: &TransientSimulator,
        nominal: &PvtConditions,
        report: &mut CalibrationReport,
    ) -> Result<WriteEnergyModel, ModelError> {
        let grid: Vec<(f64, f64)> = self
            .config
            .supply_voltages
            .iter()
            .flat_map(|&vdd| {
                self.config
                    .temperatures
                    .iter()
                    .map(move |&temp| (vdd, temp))
            })
            .collect();
        let energies = par_map_sweep(&grid, self.config.threads, |_, &(vdd, temp)| {
            let pvt = nominal.with_vdd(Volts(vdd)).with_temperature(Celsius(temp));
            let e = DischargeBackend::write_energy(simulator, &pvt)?;
            Ok::<_, ModelError>(e.0)
        })
        .map_err(|err| {
            let (vdd, temp) = grid[err.index];
            ModelError::from_sweep(
                err,
                format!("write-energy sweep V_DD = {vdd} V, T = {temp} degC"),
            )
        })?;

        let (vdds, temps): (Vec<f64>, Vec<f64>) = grid.iter().copied().unzip();
        let energies_fj = energies;
        report.training_samples += energies_fj.len();

        let fit = SeparableFit::fit(
            &vdds,
            &temps,
            &energies_fj,
            self.config.degrees.write_vdd,
            self.config.degrees.write_temperature,
            10,
        )
        .map_err(|err| ModelError::CalibrationFailed {
            model: "write energy (Eq. 7)".to_string(),
            reason: err.to_string(),
        })?;
        report.write_energy_rms_fj = fit.residual_rms();

        Ok(WriteEnergyModel::new(
            fit.factor_x().clone(),
            fit.factor_y().clone(),
        ))
    }

    /// Eq. 8: fit of the discharge energy as `p1(V_DD) · p3(ΔV_BL) · p1(T)`.
    fn fit_discharge_energy(
        &self,
        simulator: &TransientSimulator,
        nominal: &PvtConditions,
        report: &mut CalibrationReport,
    ) -> Result<DischargeEnergyModel, ModelError> {
        // Stage 1: nominal temperature, sweep (V_DD, V_WL) → fit p1(VDD)·p3(ΔV).
        let stage1_grid: Vec<(f64, f64)> = self
            .config
            .supply_voltages
            .iter()
            .flat_map(|&vdd| {
                self.config
                    .secondary_wordline_voltages
                    .iter()
                    .map(move |&v_wl| (vdd, v_wl))
            })
            .collect();
        let stage1_rows = par_map_sweep(&stage1_grid, self.config.threads, |_, &(vdd, v_wl)| {
            let pvt = nominal.with_vdd(Volts(vdd));
            let stimulus = self.stimulus(v_wl);
            let delta = DischargeBackend::discharge_delta(simulator, &stimulus, &pvt)?;
            let e = DischargeBackend::discharge_energy(simulator, &stimulus, &pvt, delta)?;
            Ok::<_, ModelError>((delta.0, vdd, e.0))
        })
        .map_err(|err| {
            let (vdd, v_wl) = stage1_grid[err.index];
            ModelError::from_sweep(
                err,
                format!("discharge-energy sweep V_DD = {vdd} V, V_WL = {v_wl} V"),
            )
        })?;
        report.circuit_simulations += stage1_grid.len();

        let mut delta_vs = Vec::new();
        let mut vdds = Vec::new();
        let mut energies_fj = Vec::new();
        for (delta, vdd, e_fj) in stage1_rows {
            delta_vs.push(delta);
            vdds.push(vdd);
            energies_fj.push(e_fj);
        }
        let stage1 = SeparableFit::fit(
            &delta_vs,
            &vdds,
            &energies_fj,
            self.config.degrees.discharge_energy_delta,
            self.config.degrees.discharge_energy_vdd,
            10,
        )
        .map_err(|err| ModelError::CalibrationFailed {
            model: "discharge energy (Eq. 8, stage 1)".to_string(),
            reason: err.to_string(),
        })?;

        // Stage 2: temperature factor from the nominal-supply temperature sweep.
        let stage2_grid: Vec<(f64, f64)> = self
            .config
            .temperatures
            .iter()
            .flat_map(|&temp| {
                self.config
                    .secondary_wordline_voltages
                    .iter()
                    .map(move |&v_wl| (temp, v_wl))
            })
            .collect();
        let stage2_rows = par_map_sweep(&stage2_grid, self.config.threads, |_, &(temp, v_wl)| {
            let pvt = nominal.with_temperature(Celsius(temp));
            let stimulus = self.stimulus(v_wl);
            let delta = DischargeBackend::discharge_delta(simulator, &stimulus, &pvt)?;
            let e = DischargeBackend::discharge_energy(simulator, &stimulus, &pvt, delta)?.0;
            Ok::<_, ModelError>((temp, delta.0, e))
        })
        .map_err(|err| {
            let (temp, v_wl) = stage2_grid[err.index];
            ModelError::from_sweep(
                err,
                format!("discharge-energy sweep T = {temp} degC, V_WL = {v_wl} V"),
            )
        })?;
        report.circuit_simulations += stage2_grid.len();

        let mut temps = Vec::new();
        let mut ratios = Vec::new();
        let mut stage2_reference = Vec::new();
        let mut stage2_base = Vec::new();
        for (temp, delta, e) in stage2_rows {
            let base = stage1.eval(delta, nominal.vdd.0);
            if base > 1e-6 {
                temps.push(temp);
                ratios.push(e / base);
                stage2_reference.push(e);
                stage2_base.push(base);
            }
        }
        report.training_samples += energies_fj.len() + ratios.len();

        let temperature_factor = polynomial_fit(
            &temps,
            &ratios,
            self.config.degrees.discharge_energy_temperature,
        )
        .map_err(|err| ModelError::CalibrationFailed {
            model: "discharge energy (Eq. 8, stage 2)".to_string(),
            reason: err.to_string(),
        })?;

        let residuals: Vec<f64> = stage2_reference
            .iter()
            .zip(stage2_base.iter())
            .zip(temps.iter())
            .map(|((e, base), t)| e - base * temperature_factor.eval(*t))
            .collect();
        report.discharge_energy_rms_fj = stats::rms(&residuals);

        Ok(DischargeEnergyModel::new(
            stage1.factor_y().clone(),
            stage1.factor_x().clone(),
            temperature_factor,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optima_circuit::montecarlo::MismatchSample;

    fn calibrated() -> CalibrationOutcome {
        let tech = Technology::tsmc65_like();
        Calibrator::new(tech, CalibrationConfig::fast())
            .run()
            .expect("calibration succeeds")
    }

    #[test]
    fn calibration_produces_small_training_residuals() {
        let outcome = calibrated();
        let report = outcome.report();
        // The paper reports sub-millivolt RMS errors; our golden reference is
        // different, so we only require "clearly below an ADC LSB" (a few mV).
        assert!(
            report.basic_discharge_rms_mv < 10.0,
            "basic discharge rms {} mV too large",
            report.basic_discharge_rms_mv
        );
        assert!(report.supply_rms_mv < 40.0);
        assert!(report.temperature_rms_mv < 25.0);
        assert!(report.mismatch_sigma_rms_mv < 5.0);
        assert!(report.write_energy_rms_fj < 1.0);
        assert!(report.discharge_energy_rms_fj < 2.0);
        assert!(report.circuit_simulations > 50);
        assert!(report.training_samples > 200);
    }

    #[test]
    fn calibrated_discharge_tracks_circuit_simulation() {
        let tech = Technology::tsmc65_like();
        let outcome = calibrated();
        let models = outcome.models();
        let simulator = TransientSimulator::new(tech.clone());
        let nominal = PvtConditions::nominal(&tech);

        for &v_wl in &[0.55, 0.7, 0.85, 1.0] {
            for &t in &[0.4e-9, 1.0e-9, 1.6e-9] {
                let stim = DischargeStimulus {
                    word_line_voltage: Volts(v_wl),
                    duration: Seconds(2e-9),
                    cells_on_bitline: 16,
                    time_steps: 400,
                    stored_bit: true,
                };
                let waveform = simulator
                    .discharge_waveform(&stim, &nominal, &MismatchSample::none())
                    .unwrap();
                let reference = waveform.sample_at(Seconds(t)).unwrap().0;
                let predicted = models
                    .bitline_voltage(Seconds(t), Volts(v_wl), Volts(1.0), Celsius(25.0))
                    .unwrap()
                    .0;
                assert!(
                    (reference - predicted).abs() < 0.02,
                    "model deviates by {} V at v_wl={v_wl}, t={t}",
                    (reference - predicted).abs()
                );
            }
        }
    }

    #[test]
    fn calibrated_mismatch_sigma_grows_with_wordline_voltage() {
        let outcome = calibrated();
        let models = outcome.models();
        let low = models.mismatch_sigma(Seconds(1.5e-9), Volts(0.6)).0;
        let high = models.mismatch_sigma(Seconds(1.5e-9), Volts(1.0)).0;
        assert!(
            high > low,
            "Fig. 5d behaviour missing: sigma(1.0 V) = {high} <= sigma(0.6 V) = {low}"
        );
    }

    #[test]
    fn calibrated_energy_models_are_physical() {
        let outcome = calibrated();
        let models = outcome.models();
        let write_nominal = models.write_energy(Volts(1.0), Celsius(25.0)).0;
        let write_high = models.write_energy(Volts(1.1), Celsius(25.0)).0;
        assert!(write_nominal > 0.0);
        assert!(write_high > write_nominal);
        let e_small = models
            .discharge_energy(Volts(0.05), Volts(1.0), Celsius(25.0))
            .0;
        let e_large = models
            .discharge_energy(Volts(0.35), Volts(1.0), Celsius(25.0))
            .0;
        assert!(e_large > e_small);
    }

    #[test]
    fn calibration_is_bit_identical_at_any_thread_count() {
        // The fitted models are built from sweep data reassembled in grid
        // order (with per-grid-point Monte-Carlo streams), so the fits must
        // not depend on how the sweeps are distributed over threads.
        let tech = Technology::tsmc65_like();
        let serial = Calibrator::new(
            tech.clone(),
            CalibrationConfig {
                threads: 1,
                ..CalibrationConfig::fast()
            },
        )
        .run()
        .unwrap();
        let parallel = Calibrator::new(
            tech,
            CalibrationConfig {
                threads: 8,
                ..CalibrationConfig::fast()
            },
        )
        .run()
        .unwrap();
        assert_eq!(serial.models(), parallel.models());
        assert_eq!(serial.report(), parallel.report());
    }

    #[test]
    fn fast_config_is_smaller_than_default() {
        let fast = CalibrationConfig::fast();
        let default = CalibrationConfig::default();
        assert!(fast.wordline_voltages.len() < default.wordline_voltages.len());
        assert!(fast.mismatch_samples < default.mismatch_samples);
        assert_eq!(default.degrees, ModelDegrees::default());
    }

    #[test]
    fn outcome_accessors() {
        let outcome = calibrated();
        assert_eq!(outcome.models().vdd_nominal(), Volts(1.0));
        let models = outcome.clone().into_models();
        assert_eq!(&models, outcome.models());
    }
}
