//! Persistent calibration snapshots.
//!
//! Calibration is the expensive, deterministic front half of every
//! experiment: hundreds of golden-reference transients feeding six
//! least-squares fits.  This module makes it a build-once artifact — a
//! [`crate::calibration::CalibrationOutcome`] can be saved to disk and
//! loaded back bit-exactly, so experiment binaries start in milliseconds
//! instead of re-running the circuit sweeps.
//!
//! The on-disk format is a small versioned text format (the workspace has no
//! serialization crates — the vendored `serde` is a marker-trait stub), with
//! three integrity gates checked by [`load`]:
//!
//! 1. a **schema tag** (`optima-calibration-snapshot v1`) so incompatible
//!    layouts are rejected instead of mis-parsed,
//! 2. a **technology fingerprint** — a hash over every parameter of the
//!    [`Technology`] the models were fitted against, and
//! 3. a **calibration-config fingerprint** — a hash over the sweep grids,
//!    polynomial degrees and the array geometry the models serve, so a
//!    fast-grid snapshot never satisfies a full-grid request and a stale
//!    16×4 snapshot never silently serves an INT8 run.
//!
//! Every `f64` is stored as its IEEE-754 bit pattern in hex (with the
//! decimal value alongside as a comment), so a save → load round trip is
//! bit-exact and the file still diffs meaningfully.  All load failures are
//! typed [`ModelError`] variants naming the offending path.

use crate::calibration::{CalibrationConfig, CalibrationOutcome, CalibrationReport};
use crate::error::ModelError;
use crate::model::discharge::DischargeModel;
use crate::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use crate::model::mismatch::MismatchSigmaModel;
use crate::model::suite::ModelSuite;
use crate::model::supply::SupplyModel;
use crate::model::temperature::TemperatureModel;
use optima_circuit::array::ArrayConfig;
use optima_circuit::technology::Technology;
use optima_math::units::{Celsius, Volts};
use optima_math::Polynomial;
use std::fmt::Write as _;
use std::path::Path;

/// Schema tag of the current snapshot layout; bump on breaking changes.
pub const SCHEMA: &str = "optima-calibration-snapshot v1";

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// FNV-1a accumulator used for the fingerprints (stable across platforms —
/// no `DefaultHasher`, whose output is not guaranteed between releases).
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    fn f64(&mut self, value: f64) -> &mut Self {
        self.bytes(&value.to_bits().to_le_bytes())
    }

    fn usize(&mut self, value: usize) -> &mut Self {
        self.bytes(&(value as u64).to_le_bytes())
    }

    fn f64s(&mut self, values: &[f64]) -> &mut Self {
        self.usize(values.len());
        for &v in values {
            self.f64(v);
        }
        self
    }
}

/// Stable fingerprint over every parameter of a [`Technology`].
pub fn technology_fingerprint(tech: &Technology) -> u64 {
    let mut fp = Fingerprint::new();
    fp.bytes(tech.name.as_bytes())
        .f64(tech.vdd_nominal.0)
        .f64(tech.nmos_vth.0)
        .f64(tech.pmos_vth.0)
        .f64(tech.nmos_beta)
        .f64(tech.pmos_beta)
        .f64(tech.channel_length_modulation)
        .f64(tech.subthreshold_swing)
        .f64(tech.bitline_cap_per_cell.0)
        .f64(tech.bitline_cap_fixed.0)
        .f64(tech.cell_node_cap.0)
        .f64(tech.temperature_nominal.0)
        .f64(tech.vth_temp_coefficient)
        .f64(tech.mobility_temp_exponent)
        .f64(tech.sigma_vth_mismatch.0)
        .f64(tech.sigma_beta_mismatch);
    fp.0
}

/// Stable fingerprint over the sweep grids and model degrees of a
/// [`CalibrationConfig`], plus the [`ArrayConfig`] geometry the models are
/// meant to serve.
///
/// The geometry is folded in because it feeds the calibration indirectly
/// (rows set the bit-line load, the slice width sets the DAC span the sweeps
/// must cover): a stale 16×4 snapshot must never silently satisfy an INT8
/// run.  The worker-thread knob is deliberately excluded: calibration is
/// bit-identical at any thread count, so the same snapshot serves all of
/// them.
pub fn config_fingerprint(config: &CalibrationConfig, array: &ArrayConfig) -> u64 {
    let mut fp = Fingerprint::new();
    fp.bytes(&[array.operand_bits, array.slice_bits, array.column_mux])
        .bytes(&array.rows.to_le_bytes())
        .bytes(&array.columns.to_le_bytes());
    fp.f64s(&config.wordline_voltages)
        .usize(config.time_samples)
        .f64(config.max_time.0)
        .f64s(&config.supply_voltages)
        .f64s(&config.temperatures)
        .f64s(&config.secondary_wordline_voltages)
        .usize(config.mismatch_samples)
        .usize(config.mismatch_time_points)
        .bytes(&config.seed.to_le_bytes())
        .usize(config.cells_on_bitline)
        .usize(config.reference_time_steps);
    let d = &config.degrees;
    for degree in [
        d.overdrive,
        d.time,
        d.supply,
        d.temperature,
        d.mismatch_time,
        d.mismatch_wordline,
        d.write_vdd,
        d.write_temperature,
        d.discharge_energy_vdd,
        d.discharge_energy_delta,
        d.discharge_energy_temperature,
    ] {
        fp.usize(degree);
    }
    fp.0
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

fn io_error(path: &Path, err: std::io::Error) -> ModelError {
    ModelError::SnapshotIo {
        path: path.display().to_string(),
        reason: err.to_string(),
    }
}

fn push_f64(out: &mut String, key: &str, value: f64) {
    let _ = writeln!(out, "{key} {:016x} # {value}", value.to_bits());
}

fn push_poly(out: &mut String, key: &str, poly: &Polynomial) {
    let _ = write!(out, "{key}");
    for &c in poly.coeffs() {
        let _ = write!(out, " {:016x}", c.to_bits());
    }
    let _ = writeln!(out, " # {poly}");
}

fn render(
    outcome: &CalibrationOutcome,
    technology: &Technology,
    config: &CalibrationConfig,
    array: &ArrayConfig,
) -> String {
    let models = outcome.models();
    let report = outcome.report();
    let mut out = String::new();
    let _ = writeln!(out, "{SCHEMA}");
    let _ = writeln!(
        out,
        "technology {:016x} # {}",
        technology_fingerprint(technology),
        technology.name
    );
    let _ = writeln!(
        out,
        "config {:016x} # {}",
        config_fingerprint(config, array),
        array.describe()
    );

    let discharge = models.discharge_model();
    push_f64(&mut out, "discharge.vdd_nominal", discharge.vdd_nominal().0);
    push_f64(&mut out, "discharge.threshold", discharge.threshold().0);
    push_poly(
        &mut out,
        "discharge.factor_overdrive",
        discharge.factor_overdrive(),
    );
    push_poly(&mut out, "discharge.factor_time", discharge.factor_time());
    push_f64(
        &mut out,
        "discharge.time_lo_ns",
        discharge.time_range_ns().0,
    );
    push_f64(
        &mut out,
        "discharge.time_hi_ns",
        discharge.time_range_ns().1,
    );
    push_f64(&mut out, "discharge.vwl_lo", discharge.vwl_range().0);
    push_f64(&mut out, "discharge.vwl_hi", discharge.vwl_range().1);

    let supply = models.supply_model();
    push_f64(&mut out, "supply.vdd_nominal", supply.vdd_nominal().0);
    push_poly(&mut out, "supply.correction", supply.correction());
    push_f64(&mut out, "supply.vdd_lo", supply.vdd_range().0);
    push_f64(&mut out, "supply.vdd_hi", supply.vdd_range().1);

    let temperature = models.temperature_model();
    push_f64(
        &mut out,
        "temperature.nominal",
        temperature.temperature_nominal().0,
    );
    push_poly(
        &mut out,
        "temperature.sensitivity",
        temperature.sensitivity(),
    );
    push_f64(
        &mut out,
        "temperature.lo",
        temperature.temperature_range().0,
    );
    push_f64(
        &mut out,
        "temperature.hi",
        temperature.temperature_range().1,
    );

    let mismatch = models.mismatch_model();
    push_poly(&mut out, "mismatch.factor_time", mismatch.factor_time());
    push_poly(
        &mut out,
        "mismatch.factor_wordline",
        mismatch.factor_wordline(),
    );

    let write = models.write_energy_model();
    push_poly(&mut out, "write_energy.factor_vdd", write.factor_vdd());
    push_poly(
        &mut out,
        "write_energy.factor_temperature",
        write.factor_temperature(),
    );

    let discharge_energy = models.discharge_energy_model();
    push_poly(
        &mut out,
        "discharge_energy.factor_vdd",
        discharge_energy.factor_vdd(),
    );
    push_poly(
        &mut out,
        "discharge_energy.factor_discharge",
        discharge_energy.factor_discharge(),
    );
    push_poly(
        &mut out,
        "discharge_energy.factor_temperature",
        discharge_energy.factor_temperature(),
    );

    push_f64(
        &mut out,
        "report.basic_discharge_rms_mv",
        report.basic_discharge_rms_mv,
    );
    push_f64(&mut out, "report.supply_rms_mv", report.supply_rms_mv);
    push_f64(
        &mut out,
        "report.temperature_rms_mv",
        report.temperature_rms_mv,
    );
    push_f64(
        &mut out,
        "report.mismatch_sigma_rms_mv",
        report.mismatch_sigma_rms_mv,
    );
    push_f64(
        &mut out,
        "report.write_energy_rms_fj",
        report.write_energy_rms_fj,
    );
    push_f64(
        &mut out,
        "report.discharge_energy_rms_fj",
        report.discharge_energy_rms_fj,
    );
    let _ = writeln!(
        out,
        "report.circuit_simulations {}",
        report.circuit_simulations
    );
    let _ = writeln!(out, "report.training_samples {}", report.training_samples);
    let _ = writeln!(out, "end");
    out
}

/// Saves a calibration outcome as a versioned snapshot at `path`.
///
/// The write is atomic (temp file + rename), so concurrent readers never see
/// a half-written snapshot.  Parent directories are created as needed.
///
/// # Errors
///
/// Returns [`ModelError::SnapshotIo`] naming the path on filesystem errors.
pub fn save(
    path: &Path,
    outcome: &CalibrationOutcome,
    technology: &Technology,
    config: &CalibrationConfig,
    array: &ArrayConfig,
) -> Result<(), ModelError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| io_error(path, e))?;
        }
    }
    let body = render(outcome, technology, config, array);
    // Unique per process *and* per writer: concurrent saves of the same path
    // (e.g. parallel tests cold-missing a shared cache) must never rename
    // each other's half-written temp files into place.
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let writer = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), writer));
    std::fs::write(&tmp, body).map_err(|e| io_error(path, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_error(path, e))
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

struct Parser<'a> {
    path: &'a Path,
    lines: Vec<&'a str>,
    cursor: usize,
}

impl<'a> Parser<'a> {
    fn corrupt(&self, reason: impl Into<String>) -> ModelError {
        ModelError::SnapshotCorrupt {
            path: self.path.display().to_string(),
            line: self.cursor,
            reason: reason.into(),
        }
    }

    /// Next non-empty line with any `# comment` tail stripped.
    fn next_line(&mut self) -> Result<&'a str, ModelError> {
        while self.cursor < self.lines.len() {
            let raw = self.lines[self.cursor];
            self.cursor += 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if !line.is_empty() {
                return Ok(line);
            }
        }
        Err(ModelError::SnapshotCorrupt {
            path: self.path.display().to_string(),
            line: 0,
            reason: "file ended prematurely".to_string(),
        })
    }

    /// Consumes a line of the form `key <values...>` and returns the values.
    fn fields(&mut self, key: &str) -> Result<Vec<&'a str>, ModelError> {
        let line = self.next_line()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(found) if found == key => Ok(parts.collect()),
            Some(found) => Err(self.corrupt(format!("expected key '{key}', found '{found}'"))),
            None => Err(self.corrupt(format!("expected key '{key}' on an empty line"))),
        }
    }

    fn parse_bits(&self, field: &str) -> Result<f64, ModelError> {
        // `from_str_radix` alone would accept shortened or '+'-prefixed
        // tokens, silently loading a wildly wrong value from a corrupted
        // file; enforce the exact 16-hex-digit width the writer emits.
        if field.len() != 16 || !field.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.corrupt(format!("'{field}' is not a 16-digit hex bit pattern")));
        }
        u64::from_str_radix(field, 16)
            .map(f64::from_bits)
            .map_err(|_| self.corrupt(format!("'{field}' is not a 16-digit hex bit pattern")))
    }

    fn f64(&mut self, key: &str) -> Result<f64, ModelError> {
        let fields = self.fields(key)?;
        match fields.as_slice() {
            [field] => self.parse_bits(field),
            _ => Err(self.corrupt(format!("key '{key}' needs exactly one value"))),
        }
    }

    fn usize(&mut self, key: &str) -> Result<usize, ModelError> {
        let fields = self.fields(key)?;
        match fields.as_slice() {
            [field] => field
                .parse()
                .map_err(|_| self.corrupt(format!("'{field}' is not an unsigned integer"))),
            _ => Err(self.corrupt(format!("key '{key}' needs exactly one value"))),
        }
    }

    fn poly(&mut self, key: &str) -> Result<Polynomial, ModelError> {
        let fields = self.fields(key)?;
        if fields.is_empty() {
            return Err(self.corrupt(format!("polynomial '{key}' has no coefficients")));
        }
        let coeffs = fields
            .iter()
            .map(|f| self.parse_bits(f))
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(Polynomial::new(coeffs))
    }

    fn fingerprint(
        &mut self,
        key: &str,
        expected: u64,
        what: &'static str,
    ) -> Result<(), ModelError> {
        let fields = self.fields(key)?;
        let [field] = fields.as_slice() else {
            return Err(self.corrupt(format!("key '{key}' needs exactly one fingerprint")));
        };
        let found = u64::from_str_radix(field, 16)
            .map_err(|_| self.corrupt(format!("'{field}' is not a hex fingerprint")))?;
        if found != expected {
            return Err(ModelError::SnapshotFingerprintMismatch {
                path: self.path.display().to_string(),
                what,
                found: format!("{found:016x}"),
                expected: format!("{expected:016x}"),
            });
        }
        Ok(())
    }
}

/// Loads a calibration snapshot from `path`, verifying the schema version
/// and the technology/configuration fingerprints.
///
/// A successful load is bit-exact: the returned outcome compares equal to
/// the one that was saved.
///
/// # Errors
///
/// * [`ModelError::SnapshotIo`] when the file cannot be read,
/// * [`ModelError::SnapshotSchemaMismatch`] for a foreign or future schema,
/// * [`ModelError::SnapshotFingerprintMismatch`] when the snapshot was
///   fitted for a different technology, calibration configuration or array
///   geometry,
/// * [`ModelError::SnapshotCorrupt`] for anything malformed — all naming
///   `path`.
pub fn load(
    path: &Path,
    technology: &Technology,
    config: &CalibrationConfig,
    array: &ArrayConfig,
) -> Result<CalibrationOutcome, ModelError> {
    let body = std::fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    let mut parser = Parser {
        path,
        lines: body.lines().collect(),
        cursor: 0,
    };

    let schema = parser.next_line()?;
    if schema != SCHEMA {
        return Err(ModelError::SnapshotSchemaMismatch {
            path: path.display().to_string(),
            found: schema.to_string(),
            expected: SCHEMA.to_string(),
        });
    }
    parser.fingerprint(
        "technology",
        technology_fingerprint(technology),
        "technology",
    )?;
    parser.fingerprint(
        "config",
        config_fingerprint(config, array),
        "calibration config",
    )?;

    let discharge = DischargeModel::new(
        Volts(parser.f64("discharge.vdd_nominal")?),
        Volts(parser.f64("discharge.threshold")?),
        parser.poly("discharge.factor_overdrive")?,
        parser.poly("discharge.factor_time")?,
        (
            parser.f64("discharge.time_lo_ns")?,
            parser.f64("discharge.time_hi_ns")?,
        ),
        (
            parser.f64("discharge.vwl_lo")?,
            parser.f64("discharge.vwl_hi")?,
        ),
    );
    let supply = SupplyModel::new(
        Volts(parser.f64("supply.vdd_nominal")?),
        parser.poly("supply.correction")?,
        (parser.f64("supply.vdd_lo")?, parser.f64("supply.vdd_hi")?),
    );
    let temperature = TemperatureModel::new(
        Celsius(parser.f64("temperature.nominal")?),
        parser.poly("temperature.sensitivity")?,
        (parser.f64("temperature.lo")?, parser.f64("temperature.hi")?),
    );
    let mismatch = MismatchSigmaModel::new(
        parser.poly("mismatch.factor_time")?,
        parser.poly("mismatch.factor_wordline")?,
    );
    let write_energy = WriteEnergyModel::new(
        parser.poly("write_energy.factor_vdd")?,
        parser.poly("write_energy.factor_temperature")?,
    );
    let discharge_energy = DischargeEnergyModel::new(
        parser.poly("discharge_energy.factor_vdd")?,
        parser.poly("discharge_energy.factor_discharge")?,
        parser.poly("discharge_energy.factor_temperature")?,
    );

    let report = CalibrationReport {
        basic_discharge_rms_mv: parser.f64("report.basic_discharge_rms_mv")?,
        supply_rms_mv: parser.f64("report.supply_rms_mv")?,
        temperature_rms_mv: parser.f64("report.temperature_rms_mv")?,
        mismatch_sigma_rms_mv: parser.f64("report.mismatch_sigma_rms_mv")?,
        write_energy_rms_fj: parser.f64("report.write_energy_rms_fj")?,
        discharge_energy_rms_fj: parser.f64("report.discharge_energy_rms_fj")?,
        circuit_simulations: parser.usize("report.circuit_simulations")?,
        training_samples: parser.usize("report.training_samples")?,
    };
    let end = parser.next_line()?;
    if end != "end" {
        return Err(parser.corrupt(format!("expected trailing 'end', found '{end}'")));
    }

    let models = ModelSuite::new(
        discharge,
        supply,
        temperature,
        mismatch,
        write_energy,
        discharge_energy,
    );
    Ok(CalibrationOutcome::from_parts(models, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibrator;

    fn fixture() -> (Technology, CalibrationConfig, CalibrationOutcome) {
        static FIXTURE: std::sync::OnceLock<(Technology, CalibrationConfig, CalibrationOutcome)> =
            std::sync::OnceLock::new();
        FIXTURE
            .get_or_init(|| {
                let tech = Technology::tsmc65_like();
                let config = CalibrationConfig::fast();
                let outcome = Calibrator::new(tech.clone(), config.clone())
                    .run()
                    .expect("calibration succeeds");
                (tech, config, outcome)
            })
            .clone()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "optima-snapshot-test-{}-{name}",
            std::process::id()
        ))
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let (tech, config, outcome) = fixture();
        let array = ArrayConfig::default();
        let path = temp_path("roundtrip.snap");
        save(&path, &outcome, &tech, &config, &array).unwrap();
        let loaded = load(&path, &tech, &config, &array).unwrap();
        assert_eq!(&outcome, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_io_error_naming_the_path() {
        let (tech, config, _) = fixture();
        let path = temp_path("does-not-exist.snap");
        match load(&path, &tech, &config, &ArrayConfig::default()) {
            Err(ModelError::SnapshotIo { path: p, .. }) => {
                assert!(p.contains("does-not-exist.snap"));
            }
            other => panic!("expected SnapshotIo, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_file_is_rejected_naming_the_path_and_line() {
        let (tech, config, outcome) = fixture();
        let array = ArrayConfig::default();
        let path = temp_path("corrupt.snap");
        let mut body = render(&outcome, &tech, &config, &array);
        // Truncate mid-model: the parser must fail, not mis-parse.
        body.truncate(body.len() / 2);
        std::fs::write(&path, &body).unwrap();
        match load(&path, &tech, &config, &array) {
            Err(ModelError::SnapshotCorrupt { path: p, .. }) => {
                assert!(p.contains("corrupt.snap"));
            }
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
        // Garbage in a value position is also corruption, with a line number.
        let garbled = render(&outcome, &tech, &config, &array).replacen(
            "discharge.threshold ",
            "discharge.threshold zzzz ",
            1,
        );
        std::fs::write(&path, garbled).unwrap();
        match load(&path, &tech, &config, &array) {
            Err(ModelError::SnapshotCorrupt { line, .. }) => assert!(line > 0),
            other => panic!("expected SnapshotCorrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let (tech, config, outcome) = fixture();
        let array = ArrayConfig::default();
        let path = temp_path("schema.snap");
        let body = render(&outcome, &tech, &config, &array).replacen(
            SCHEMA,
            "optima-calibration-snapshot v0",
            1,
        );
        std::fs::write(&path, body).unwrap();
        match load(&path, &tech, &config, &array) {
            Err(ModelError::SnapshotSchemaMismatch {
                path: p,
                found,
                expected,
            }) => {
                assert!(p.contains("schema.snap"));
                assert_eq!(found, "optima-calibration-snapshot v0");
                assert_eq!(expected, SCHEMA);
            }
            other => panic!("expected SnapshotSchemaMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_technology_fingerprint_is_rejected() {
        let (tech, config, outcome) = fixture();
        let array = ArrayConfig::default();
        let path = temp_path("tech-fp.snap");
        save(&path, &outcome, &tech, &config, &array).unwrap();
        let mut other_tech = tech.clone();
        other_tech.nmos_vth = Volts(0.5);
        match load(&path, &other_tech, &config, &array) {
            Err(ModelError::SnapshotFingerprintMismatch { path: p, what, .. }) => {
                assert!(p.contains("tech-fp.snap"));
                assert_eq!(what, "technology");
            }
            other => panic!("expected SnapshotFingerprintMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_config_fingerprint_is_rejected() {
        let (tech, config, outcome) = fixture();
        let array = ArrayConfig::default();
        let path = temp_path("config-fp.snap");
        save(&path, &outcome, &tech, &config, &array).unwrap();
        // A fast-grid snapshot must not satisfy a full-grid request.
        match load(&path, &tech, &CalibrationConfig::default(), &array) {
            Err(ModelError::SnapshotFingerprintMismatch { what, .. }) => {
                assert_eq!(what, "calibration config");
            }
            other => panic!("expected SnapshotFingerprintMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_default_geometry_snapshot_cannot_serve_an_int8_run() {
        let (tech, config, outcome) = fixture();
        let path = temp_path("geometry-fp.snap");
        save(&path, &outcome, &tech, &config, &ArrayConfig::default()).unwrap();
        // Same technology, same calibration grids — only the geometry moved.
        match load(&path, &tech, &config, &ArrayConfig::int8()) {
            Err(ModelError::SnapshotFingerprintMismatch {
                path: p,
                what,
                found,
                expected,
            }) => {
                assert!(p.contains("geometry-fp.snap"));
                assert_eq!(what, "calibration config");
                assert_ne!(found, expected);
            }
            other => panic!("expected SnapshotFingerprintMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprints_ignore_the_thread_knob() {
        let array = ArrayConfig::default();
        let config = CalibrationConfig::fast();
        let threaded = CalibrationConfig {
            threads: 7,
            ..config.clone()
        };
        assert_eq!(
            config_fingerprint(&config, &array),
            config_fingerprint(&threaded, &array)
        );
        assert_ne!(
            config_fingerprint(&config, &array),
            config_fingerprint(&CalibrationConfig::default(), &array)
        );
    }

    #[test]
    fn fingerprint_tracks_every_geometry_parameter() {
        let config = CalibrationConfig::fast();
        let base = ArrayConfig::default();
        let fp = |array: &ArrayConfig| config_fingerprint(&config, array);
        let variants = [
            ArrayConfig::int8(),
            ArrayConfig { rows: 32, ..base },
            ArrayConfig { columns: 8, ..base },
            ArrayConfig {
                columns: 8,
                column_mux: 2,
                ..base
            },
        ];
        for variant in variants {
            assert_ne!(
                fp(&base),
                fp(&variant),
                "{} vs {}",
                base.describe(),
                variant.describe()
            );
        }
    }

    #[test]
    fn technology_fingerprint_tracks_every_parameter_change() {
        let tech = Technology::tsmc65_like();
        let base = technology_fingerprint(&tech);
        let mut shifted = tech.clone();
        shifted.sigma_beta_mismatch += 1e-6;
        assert_ne!(base, technology_fingerprint(&shifted));
        let mut renamed = tech;
        renamed.name.push('x');
        assert_ne!(base, technology_fingerprint(&renamed));
    }
}
