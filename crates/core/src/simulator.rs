//! Event-based discrete-time simulation of discharge-based in-SRAM operations.
//!
//! The paper incorporates its behavioural models "into a versatile
//! discrete-time simulation framework written in SystemVerilog".  This module
//! is the Rust equivalent: operations on an SRAM column group (pre-charge,
//! write, word-line pulses, sampling) are described as timestamped events;
//! the simulator processes them in order and uses the fitted [`ModelSuite`]
//! to compute analog voltages and energies — no differential equations are
//! solved, which is where the speed-up over circuit simulation comes from.

use crate::error::ModelError;
use crate::model::suite::ModelSuite;
use optima_math::units::{Celsius, FemtoJoules, Seconds, Volts};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Pre-charge the bit-line of `column` back to the supply level.
    Precharge {
        /// Column index.
        column: usize,
    },
    /// Write `bit` into the accessed cell of `column`.
    Write {
        /// Column index.
        column: usize,
        /// New cell content.
        bit: bool,
    },
    /// Drive all word-lines of the column group to `voltage` (starts a discharge).
    DriveWordLine {
        /// Analog word-line voltage.
        voltage: Volts,
    },
    /// Release the word-lines (stops the ongoing discharge).
    ReleaseWordLine,
    /// Sample the bit-line voltage of `column` (an ADC sample-and-hold).
    SampleBitline {
        /// Column index.
        column: usize,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// When the event happens (simulation time).
    pub time: Seconds,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor.
    pub fn new(time: Seconds, kind: EventKind) -> Self {
        Event { time, kind }
    }
}

/// One recorded bit-line sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitlineSample {
    /// Sampling time.
    pub time: Seconds,
    /// Sampled column.
    pub column: usize,
    /// Sampled bit-line voltage.
    pub voltage: Volts,
    /// Discharge relative to the pre-charge level.
    pub discharge: Volts,
}

/// Output of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimulationTrace {
    /// All recorded bit-line samples, in event order.
    pub samples: Vec<BitlineSample>,
    /// Total energy of all writes.
    pub write_energy: FemtoJoules,
    /// Total energy of all discharges (accounted at the following pre-charge
    /// or at the end of the run).
    pub discharge_energy: FemtoJoules,
    /// Number of events processed.
    pub events_processed: usize,
}

impl SimulationTrace {
    /// Total energy of the run.
    pub fn total_energy(&self) -> FemtoJoules {
        FemtoJoules(self.write_energy.0 + self.discharge_energy.0)
    }

    /// The samples of one column, in time order.
    ///
    /// Returns a lazy iterator — this is called inside sweep loops, and the
    /// previous `Vec<&BitlineSample>` return type allocated on every call.
    pub fn samples_for_column(&self, column: usize) -> impl Iterator<Item = &BitlineSample> + '_ {
        self.samples.iter().filter(move |s| s.column == column)
    }
}

/// Per-column analog state tracked by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ColumnState {
    stored_bit: bool,
    /// Discharge accumulated from completed word-line pulses.
    accumulated_discharge: f64,
    /// Whether the column has discharged since its last pre-charge (for
    /// energy accounting).
    pending_discharge: f64,
}

impl ColumnState {
    fn new() -> Self {
        ColumnState {
            stored_bit: false,
            accumulated_discharge: 0.0,
            pending_discharge: 0.0,
        }
    }
}

/// The event-driven behavioural simulator.
///
/// # Example
///
/// Build a single-column discharge schedule and read back the sampled voltage:
///
/// ```rust,no_run
/// # fn main() -> Result<(), optima_core::ModelError> {
/// # use optima_circuit::prelude::*;
/// # use optima_core::calibration::{CalibrationConfig, Calibrator};
/// use optima_core::simulator::{Event, EventKind, EventSimulator};
/// use optima_math::units::{Seconds, Volts};
///
/// # let technology = Technology::tsmc65_like();
/// # let models = Calibrator::new(technology, CalibrationConfig::fast()).run()?.into_models();
/// let mut sim = EventSimulator::new(models, 1);
/// let trace = sim.run(&[
///     Event::new(Seconds(0.0), EventKind::Write { column: 0, bit: true }),
///     Event::new(Seconds(1e-10), EventKind::Precharge { column: 0 }),
///     Event::new(Seconds(2e-10), EventKind::DriveWordLine { voltage: Volts(0.8) }),
///     Event::new(Seconds(1.2e-9), EventKind::SampleBitline { column: 0 }),
///     Event::new(Seconds(1.3e-9), EventKind::ReleaseWordLine),
/// ])?;
/// assert_eq!(trace.samples.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventSimulator {
    models: ModelSuite,
    columns: Vec<ColumnState>,
    vdd: Volts,
    temperature: Celsius,
    mismatch_rng: Option<ChaCha8Rng>,
    wordline: Option<(Volts, f64)>,
}

impl EventSimulator {
    /// Creates a simulator for `columns` bit-line columns using the fitted models.
    pub fn new(models: ModelSuite, columns: usize) -> Self {
        let vdd = models.vdd_nominal();
        let temperature = models.temperature_nominal();
        EventSimulator {
            models,
            columns: vec![ColumnState::new(); columns.max(1)],
            vdd,
            temperature,
            mismatch_rng: None,
            wordline: None,
        }
    }

    /// Sets the supply voltage of the run (builder style).
    pub fn with_supply(mut self, vdd: Volts) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the junction temperature of the run (builder style).
    pub fn with_temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = temperature;
        self
    }

    /// Enables per-discharge mismatch sampling with the given seed (builder style).
    pub fn with_mismatch_seed(mut self, seed: u64) -> Self {
        self.mismatch_rng = Some(ChaCha8Rng::seed_from_u64(seed));
        self
    }

    /// Number of columns being simulated.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// The model suite driving the simulation.
    pub fn models(&self) -> &ModelSuite {
        &self.models
    }

    /// Runs a schedule of events (must be sorted by time) and returns the trace.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidSchedule`] for unsorted events, invalid column
    ///   indices or a second `DriveWordLine` while one is already active.
    /// * [`ModelError::OutOfCalibrationRange`] when a discharge interval falls
    ///   outside the calibrated model domain.
    pub fn run(&mut self, events: &[Event]) -> Result<SimulationTrace, ModelError> {
        let mut trace = SimulationTrace::default();
        let mut last_time = f64::NEG_INFINITY;

        for event in events {
            let now = event.time.0;
            if now < last_time {
                return Err(ModelError::InvalidSchedule {
                    context: format!("event at t = {now} s arrives after t = {last_time} s"),
                });
            }
            last_time = now;
            self.process(event, now, &mut trace)?;
            trace.events_processed += 1;
        }

        // Account the energy of discharges that were never followed by a
        // pre-charge inside the schedule.
        for column in &mut self.columns {
            if column.pending_discharge > 0.0 {
                trace.discharge_energy.0 += self
                    .models
                    .discharge_energy(Volts(column.pending_discharge), self.vdd, self.temperature)
                    .0;
                column.pending_discharge = 0.0;
            }
        }
        Ok(trace)
    }

    fn process(
        &mut self,
        event: &Event,
        now: f64,
        trace: &mut SimulationTrace,
    ) -> Result<(), ModelError> {
        match event.kind {
            EventKind::Precharge { column } => {
                let state = self.column_mut(column)?;
                let pending = state.pending_discharge;
                state.accumulated_discharge = 0.0;
                state.pending_discharge = 0.0;
                if pending > 0.0 {
                    trace.discharge_energy.0 += self
                        .models
                        .discharge_energy(Volts(pending), self.vdd, self.temperature)
                        .0;
                }
            }
            EventKind::Write { column, bit } => {
                self.column_mut(column)?.stored_bit = bit;
                trace.write_energy.0 += self.models.write_energy(self.vdd, self.temperature).0;
            }
            EventKind::DriveWordLine { voltage } => {
                if self.wordline.is_some() {
                    return Err(ModelError::InvalidSchedule {
                        context: "word-line driven while already active".to_string(),
                    });
                }
                self.wordline = Some((voltage, now));
            }
            EventKind::ReleaseWordLine => {
                let (voltage, since) = self.wordline.take().ok_or(ModelError::InvalidSchedule {
                    context: "word-line released while not active".to_string(),
                })?;
                let elapsed = Seconds(now - since);
                if elapsed.0 > 0.0 {
                    for column in 0..self.columns.len() {
                        let delta = self.column_discharge(column, voltage, elapsed)?;
                        let state = &mut self.columns[column];
                        state.accumulated_discharge += delta;
                        state.pending_discharge += delta;
                    }
                }
            }
            EventKind::SampleBitline { column } => {
                let ongoing = match self.wordline {
                    Some((voltage, since)) if now > since => {
                        self.column_discharge(column, voltage, Seconds(now - since))?
                    }
                    _ => 0.0,
                };
                let state = self.column(column)?;
                let precharge = self.models.precharge_level(self.vdd);
                let discharge = state.accumulated_discharge + ongoing;
                trace.samples.push(BitlineSample {
                    time: event.time,
                    column,
                    voltage: Volts((precharge.0 - discharge).max(0.0)),
                    discharge: Volts(discharge),
                });
            }
        }
        Ok(())
    }

    /// Discharge contribution of one word-line pulse of length `elapsed` for `column`.
    fn column_discharge(
        &mut self,
        column: usize,
        voltage: Volts,
        elapsed: Seconds,
    ) -> Result<f64, ModelError> {
        let stored_bit = self.column(column)?.stored_bit;
        match &mut self.mismatch_rng {
            Some(rng) => Ok(self
                .models
                .discharge_with_mismatch(
                    rng,
                    elapsed,
                    voltage,
                    stored_bit,
                    self.vdd,
                    self.temperature,
                )?
                .0),
            None => Ok(self
                .models
                .discharge(elapsed, voltage, stored_bit, self.vdd, self.temperature)?
                .0),
        }
    }

    fn column(&self, column: usize) -> Result<&ColumnState, ModelError> {
        self.columns.get(column).ok_or(ModelError::InvalidSchedule {
            context: format!(
                "column {column} out of range ({} columns)",
                self.columns.len()
            ),
        })
    }

    fn column_mut(&mut self, column: usize) -> Result<&mut ColumnState, ModelError> {
        let count = self.columns.len();
        self.columns
            .get_mut(column)
            .ok_or(ModelError::InvalidSchedule {
                context: format!("column {column} out of range ({count} columns)"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::discharge::DischargeModel;
    use crate::model::energy::{DischargeEnergyModel, WriteEnergyModel};
    use crate::model::mismatch::MismatchSigmaModel;
    use crate::model::supply::SupplyModel;
    use crate::model::temperature::TemperatureModel;
    use optima_math::Polynomial;

    /// Linear toy models: ΔV = 0.3 · V_od · t[ns].
    fn toy_suite() -> ModelSuite {
        ModelSuite::new(
            DischargeModel::new(
                Volts(1.0),
                Volts(0.45),
                Polynomial::new(vec![0.0, -0.3]),
                Polynomial::new(vec![0.0, 1.0]),
                (0.0, 5.0),
                (0.0, 1.1),
            ),
            SupplyModel::identity(Volts(1.0)),
            TemperatureModel::identity(Celsius(25.0)),
            MismatchSigmaModel::new(
                Polynomial::new(vec![0.0, 1e-3]),
                Polynomial::new(vec![0.0, 1.0]),
            ),
            WriteEnergyModel::new(Polynomial::new(vec![20.0]), Polynomial::new(vec![1.0])),
            DischargeEnergyModel::new(
                Polynomial::new(vec![1.0]),
                Polynomial::new(vec![0.0, 100.0]),
                Polynomial::new(vec![1.0]),
            ),
        )
    }

    fn simple_schedule(bit: bool, v_wl: f64, sample_at_ns: f64) -> Vec<Event> {
        vec![
            Event::new(Seconds(0.0), EventKind::Write { column: 0, bit }),
            Event::new(Seconds(0.05e-9), EventKind::Precharge { column: 0 }),
            Event::new(
                Seconds(0.1e-9),
                EventKind::DriveWordLine {
                    voltage: Volts(v_wl),
                },
            ),
            Event::new(
                Seconds(0.1e-9 + sample_at_ns * 1e-9),
                EventKind::SampleBitline { column: 0 },
            ),
            Event::new(
                Seconds(0.2e-9 + sample_at_ns * 1e-9),
                EventKind::ReleaseWordLine,
            ),
        ]
    }

    #[test]
    fn stored_one_discharges_stored_zero_does_not() {
        let mut sim = EventSimulator::new(toy_suite(), 1);
        let trace = sim.run(&simple_schedule(true, 0.85, 1.0)).unwrap();
        let sample = trace.samples[0];
        assert!((sample.discharge.0 - 0.3 * 0.4).abs() < 1e-9);
        assert!((sample.voltage.0 - (1.0 - 0.12)).abs() < 1e-9);

        let mut sim = EventSimulator::new(toy_suite(), 1);
        let trace = sim.run(&simple_schedule(false, 0.85, 1.0)).unwrap();
        assert_eq!(trace.samples[0].discharge.0, 0.0);
        assert_eq!(trace.samples[0].voltage.0, 1.0);
    }

    #[test]
    fn longer_pulses_discharge_more() {
        let mut sim = EventSimulator::new(toy_suite(), 1);
        let short = sim.run(&simple_schedule(true, 0.85, 0.5)).unwrap().samples[0].discharge;
        let mut sim = EventSimulator::new(toy_suite(), 1);
        let long = sim.run(&simple_schedule(true, 0.85, 2.0)).unwrap().samples[0].discharge;
        assert!(long.0 > short.0);
    }

    #[test]
    fn energies_are_accumulated() {
        let mut sim = EventSimulator::new(toy_suite(), 1);
        let trace = sim.run(&simple_schedule(true, 0.85, 1.0)).unwrap();
        assert!((trace.write_energy.0 - 20.0).abs() < 1e-9);
        // The word line is active from 0.1 ns to 1.2 ns, so the discharge is
        // 0.3 · 0.4 · 1.1 ns = 0.132 V ⇒ 13.2 fJ with the toy 100 fJ/V model.
        assert!((trace.discharge_energy.0 - 13.2).abs() < 1e-6);
        assert!((trace.total_energy().0 - 33.2).abs() < 1e-6);
        assert_eq!(trace.events_processed, 5);
    }

    #[test]
    fn multi_column_schedule_with_different_sample_times() {
        // Two columns storing '1', sampled at different times ⇒ bit weighting.
        let mut sim = EventSimulator::new(toy_suite(), 2);
        let events = vec![
            Event::new(
                Seconds(0.0),
                EventKind::Write {
                    column: 0,
                    bit: true,
                },
            ),
            Event::new(
                Seconds(0.0),
                EventKind::Write {
                    column: 1,
                    bit: true,
                },
            ),
            Event::new(Seconds(0.05e-9), EventKind::Precharge { column: 0 }),
            Event::new(Seconds(0.05e-9), EventKind::Precharge { column: 1 }),
            Event::new(
                Seconds(0.1e-9),
                EventKind::DriveWordLine {
                    voltage: Volts(0.95),
                },
            ),
            Event::new(Seconds(0.6e-9), EventKind::SampleBitline { column: 0 }),
            Event::new(Seconds(1.1e-9), EventKind::SampleBitline { column: 1 }),
            Event::new(Seconds(1.2e-9), EventKind::ReleaseWordLine),
        ];
        let trace = sim.run(&events).unwrap();
        let col0: Vec<_> = trace.samples_for_column(0).collect();
        let col1: Vec<_> = trace.samples_for_column(1).collect();
        assert_eq!(col0.len(), 1);
        assert_eq!(col1.len(), 1);
        // Column 1 was sampled twice as late ⇒ about twice the discharge.
        let ratio = col1[0].discharge.0 / col0[0].discharge.0;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let mut sim = EventSimulator::new(toy_suite(), 1);
        // Out-of-order events.
        let err = sim
            .run(&[
                Event::new(Seconds(1e-9), EventKind::Precharge { column: 0 }),
                Event::new(Seconds(0.5e-9), EventKind::Precharge { column: 0 }),
            ])
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidSchedule { .. }));

        // Unknown column.
        let mut sim = EventSimulator::new(toy_suite(), 1);
        assert!(sim
            .run(&[Event::new(Seconds(0.0), EventKind::Precharge { column: 3 })])
            .is_err());

        // Double word-line drive.
        let mut sim = EventSimulator::new(toy_suite(), 1);
        assert!(sim
            .run(&[
                Event::new(
                    Seconds(0.0),
                    EventKind::DriveWordLine {
                        voltage: Volts(0.8)
                    }
                ),
                Event::new(
                    Seconds(1e-10),
                    EventKind::DriveWordLine {
                        voltage: Volts(0.9)
                    }
                ),
            ])
            .is_err());

        // Release without drive.
        let mut sim = EventSimulator::new(toy_suite(), 1);
        assert!(sim
            .run(&[Event::new(Seconds(0.0), EventKind::ReleaseWordLine)])
            .is_err());
    }

    #[test]
    fn mismatch_seed_makes_runs_reproducible_but_noisy() {
        let schedule = simple_schedule(true, 0.9, 1.5);
        let mut sim_a = EventSimulator::new(toy_suite(), 1).with_mismatch_seed(11);
        let mut sim_b = EventSimulator::new(toy_suite(), 1).with_mismatch_seed(11);
        let mut sim_c = EventSimulator::new(toy_suite(), 1);
        let a = sim_a.run(&schedule).unwrap().samples[0].discharge.0;
        let b = sim_b.run(&schedule).unwrap().samples[0].discharge.0;
        let c = sim_c.run(&schedule).unwrap().samples[0].discharge.0;
        assert_eq!(a, b, "equal seeds must reproduce");
        assert!(
            (a - c).abs() > 0.0,
            "mismatch must perturb the nominal value"
        );
    }

    #[test]
    fn supply_and_temperature_builders_are_applied() {
        let mut sim = EventSimulator::new(toy_suite(), 1)
            .with_supply(Volts(1.05))
            .with_temperature(Celsius(75.0));
        assert_eq!(sim.columns(), 1);
        let trace = sim.run(&simple_schedule(true, 0.85, 1.0)).unwrap();
        // The toy supply model is the identity, so the value matches nominal;
        // the point is that the run still works at a non-nominal operating point.
        assert!(trace.samples[0].discharge.0 > 0.0);
        assert!(sim.models().vdd_nominal().0 > 0.0);
    }
}
