//! The OPTIMA behavioural models (paper Section IV).
//!
//! Every model is a low-degree polynomial (or a product of polynomials) whose
//! coefficients are determined by least-squares fitting against
//! golden-reference circuit simulation (see [`crate::calibration`]):
//!
//! | Paper equation | Model | Module |
//! |---|---|---|
//! | Eq. 3 | `V_BL(t, V_WL) = V_DD + p4(V_od) · p2(t)` | [`discharge`] |
//! | Eq. 4 | `V_BL(t, V_WL, V_DD) = V_BL(t, V_WL) · p2(ΔV_DD)` | [`supply`] |
//! | Eq. 5 | `+ t · (T − T_nom) · p3(V_WL)` | [`temperature`] |
//! | Eq. 6 | `σ(t, V_WL) = p3(t) · p3(V_WL)` | [`mismatch`] |
//! | Eq. 7 | `E_wr(V_DD, T) = p2(V_DD) · p1(T)` | [`energy`] |
//! | Eq. 8 | `E_dc = p1(V_DD) · p3(ΔV_BL) · p1(T)` | [`energy`] |
//!
//! [`suite::ModelSuite`] combines all of them into the single object the rest
//! of the workspace consumes.

pub mod discharge;
pub mod energy;
pub mod mismatch;
pub mod suite;
pub mod supply;
pub mod temperature;

/// Converts a time in seconds to the nanosecond scale used inside all fitted
/// polynomials (better numerical conditioning of the fits).
pub(crate) fn to_nanoseconds(seconds: f64) -> f64 {
    seconds * 1e9
}
