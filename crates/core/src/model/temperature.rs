//! Temperature extension of the discharge model (paper Eq. 5).
//!
//! Temperature has only a minor effect on the discharge (Fig. 5b), so it is
//! modeled as an additive error term
//! `V_BL(t, V_WL, V_DD, T) = V_BL(t, V_WL, V_DD) + t · (T − T_nom) · p3(V_WL)`.

use crate::model::to_nanoseconds;
use optima_math::units::{Celsius, Seconds, Volts};
use optima_math::Polynomial;
use serde::{Deserialize, Serialize};

/// Additive temperature correction term.
///
/// # Example
///
/// ```rust
/// use optima_core::model::temperature::TemperatureModel;
/// use optima_math::Polynomial;
/// use optima_math::units::{Celsius, Seconds, Volts};
///
/// let model = TemperatureModel::new(
///     Celsius(25.0),
///     Polynomial::new(vec![1e-4]),
///     (-40.0, 125.0),
/// );
/// let term = model.term(Seconds(1e-9), Volts(0.8), Celsius(75.0));
/// assert!((term.0 - 1.0 * 50.0 * 1e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureModel {
    temperature_nominal: Celsius,
    /// `p3(V_WL)` — sensitivity polynomial in the word-line voltage
    /// (volts per nanosecond per degree Celsius).
    sensitivity: Polynomial,
    /// Calibrated temperature range (°C).
    temperature_range: (f64, f64),
}

impl TemperatureModel {
    /// Builds the temperature model from its fitted polynomial.
    pub fn new(
        temperature_nominal: Celsius,
        sensitivity: Polynomial,
        temperature_range: (f64, f64),
    ) -> Self {
        TemperatureModel {
            temperature_nominal,
            sensitivity,
            temperature_range,
        }
    }

    /// A model that ignores temperature entirely.
    pub fn identity(temperature_nominal: Celsius) -> Self {
        TemperatureModel {
            temperature_nominal,
            sensitivity: Polynomial::zero(),
            temperature_range: (temperature_nominal.0, temperature_nominal.0),
        }
    }

    /// Nominal temperature.
    pub fn temperature_nominal(&self) -> Celsius {
        self.temperature_nominal
    }

    /// The fitted sensitivity polynomial `p3(V_WL)`.
    pub fn sensitivity(&self) -> &Polynomial {
        &self.sensitivity
    }

    /// Calibrated temperature range.
    pub fn temperature_range(&self) -> (f64, f64) {
        self.temperature_range
    }

    /// Additive correction `t · (T − T_nom) · p3(V_WL)` in volts.
    pub fn term(&self, time: Seconds, word_line: Volts, temperature: Celsius) -> Volts {
        let t_ns = to_nanoseconds(time.0);
        let delta_t = temperature.0 - self.temperature_nominal.0;
        Volts(t_ns * delta_t * self.sensitivity.eval(word_line.0))
    }

    /// Applies the correction to an already supply-corrected bit-line voltage.
    pub fn apply(
        &self,
        bitline_voltage: f64,
        time: Seconds,
        word_line: Volts,
        temperature: Celsius,
    ) -> f64 {
        (bitline_voltage + self.term(time, word_line, temperature).0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_temperature_is_a_no_op() {
        let model = TemperatureModel::new(
            Celsius(25.0),
            Polynomial::new(vec![2e-4, -1e-4]),
            (-40.0, 125.0),
        );
        assert_eq!(model.term(Seconds(1e-9), Volts(0.8), Celsius(25.0)).0, 0.0);
        assert_eq!(
            model.apply(0.7, Seconds(1e-9), Volts(0.8), Celsius(25.0)),
            0.7
        );
    }

    #[test]
    fn term_scales_with_time_and_delta_t() {
        let model =
            TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![1e-4]), (-40.0, 125.0));
        let base = model.term(Seconds(0.5e-9), Volts(0.8), Celsius(75.0)).0;
        let double_time = model.term(Seconds(1.0e-9), Volts(0.8), Celsius(75.0)).0;
        let double_dt = model.term(Seconds(0.5e-9), Volts(0.8), Celsius(125.0)).0;
        assert!((double_time - 2.0 * base).abs() < 1e-12);
        assert!((double_dt - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn term_sign_follows_delta_t() {
        let model =
            TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![1e-4]), (-40.0, 125.0));
        assert!(model.term(Seconds(1e-9), Volts(0.8), Celsius(125.0)).0 > 0.0);
        assert!(model.term(Seconds(1e-9), Volts(0.8), Celsius(-40.0)).0 < 0.0);
    }

    #[test]
    fn identity_model_has_zero_sensitivity() {
        let model = TemperatureModel::identity(Celsius(25.0));
        assert_eq!(model.term(Seconds(2e-9), Volts(1.0), Celsius(125.0)).0, 0.0);
        assert!(model.sensitivity().is_zero());
        assert_eq!(model.temperature_nominal(), Celsius(25.0));
    }

    #[test]
    fn apply_clamps_at_zero() {
        let model =
            TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![-1.0]), (-40.0, 125.0));
        assert_eq!(
            model.apply(0.1, Seconds(2e-9), Volts(0.8), Celsius(125.0)),
            0.0
        );
    }
}
