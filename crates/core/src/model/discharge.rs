//! Basic bit-line discharge model (paper Eq. 3).
//!
//! `V_BL(t, V_WL) = V_DD,nom + p4(V_od) · p2(t)` with the overdrive voltage
//! `V_od = V_WL − Vth`.  The product term is negative for any discharge, so
//! the fitted `p4 · p2` surface is the (negative) voltage drop.

use crate::error::ModelError;
use crate::model::to_nanoseconds;
use optima_math::units::{Seconds, Volts};
use optima_math::Polynomial;
use serde::{Deserialize, Serialize};

/// The Eq. 3 discharge model.
///
/// # Example
///
/// ```rust
/// use optima_core::model::discharge::DischargeModel;
/// use optima_math::Polynomial;
/// use optima_math::units::{Seconds, Volts};
///
/// // A hand-built model: ΔV = 0.2 V/ns · V_od · t
/// let model = DischargeModel::new(
///     Volts(1.0),
///     Volts(0.45),
///     Polynomial::new(vec![0.0, -0.2]),
///     Polynomial::new(vec![0.0, 1.0]),
///     (0.0, 2.0),
///     (0.0, 1.0),
/// );
/// let v = model.bitline_voltage(Seconds(1e-9), Volts(0.95)).unwrap();
/// assert!((v.0 - (1.0 - 0.2 * 0.5)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DischargeModel {
    vdd_nominal: Volts,
    threshold: Volts,
    /// `p4(V_od)` — polynomial in the overdrive voltage.
    factor_overdrive: Polynomial,
    /// `p2(t)` — polynomial in time (nanoseconds).
    factor_time: Polynomial,
    /// Valid time range (nanoseconds) the model was calibrated over.
    time_range_ns: (f64, f64),
    /// Valid word-line voltage range (volts) the model was calibrated over.
    vwl_range: (f64, f64),
}

impl DischargeModel {
    /// Builds a discharge model from its fitted parts.
    pub fn new(
        vdd_nominal: Volts,
        threshold: Volts,
        factor_overdrive: Polynomial,
        factor_time: Polynomial,
        time_range_ns: (f64, f64),
        vwl_range: (f64, f64),
    ) -> Self {
        DischargeModel {
            vdd_nominal,
            threshold,
            factor_overdrive,
            factor_time,
            time_range_ns,
            vwl_range,
        }
    }

    /// Nominal supply voltage the model is referenced to.
    pub fn vdd_nominal(&self) -> Volts {
        self.vdd_nominal
    }

    /// Threshold voltage used to compute the overdrive.
    pub fn threshold(&self) -> Volts {
        self.threshold
    }

    /// The fitted `p4(V_od)` factor.
    pub fn factor_overdrive(&self) -> &Polynomial {
        &self.factor_overdrive
    }

    /// The fitted `p2(t)` factor.
    pub fn factor_time(&self) -> &Polynomial {
        &self.factor_time
    }

    /// Calibrated word-line voltage range (volts).
    pub fn vwl_range(&self) -> (f64, f64) {
        self.vwl_range
    }

    /// Calibrated time range (nanoseconds).
    pub fn time_range_ns(&self) -> (f64, f64) {
        self.time_range_ns
    }

    /// Validates that `(t, v_wl)` is inside (or marginally outside) the
    /// calibrated domain.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] when either coordinate
    /// lies more than 10 % outside the calibrated interval.
    pub fn check_domain(&self, time: Seconds, word_line: Volts) -> Result<(), ModelError> {
        let t_ns = to_nanoseconds(time.0);
        let (t_lo, t_hi) = self.time_range_ns;
        let t_margin = 0.1 * (t_hi - t_lo).max(f64::EPSILON);
        if t_ns < t_lo - t_margin || t_ns > t_hi + t_margin {
            return Err(ModelError::OutOfCalibrationRange {
                quantity: "time [ns]".to_string(),
                value: t_ns,
                lo: t_lo,
                hi: t_hi,
            });
        }
        let (v_lo, v_hi) = self.vwl_range;
        let v_margin = 0.1 * (v_hi - v_lo).max(f64::EPSILON);
        if word_line.0 < v_lo - v_margin || word_line.0 > v_hi + v_margin {
            return Err(ModelError::OutOfCalibrationRange {
                quantity: "word-line voltage [V]".to_string(),
                value: word_line.0,
                lo: v_lo,
                hi: v_hi,
            });
        }
        Ok(())
    }

    /// Bit-line voltage at time `time` for word-line voltage `word_line`
    /// under nominal supply and temperature (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] outside the calibrated domain.
    pub fn bitline_voltage(&self, time: Seconds, word_line: Volts) -> Result<Volts, ModelError> {
        self.check_domain(time, word_line)?;
        Ok(Volts(self.bitline_voltage_unchecked(time, word_line)))
    }

    /// Same as [`DischargeModel::bitline_voltage`] without domain validation
    /// (used in the inner loops of the event simulator after a single
    /// up-front check).
    pub fn bitline_voltage_unchecked(&self, time: Seconds, word_line: Volts) -> f64 {
        let overdrive = word_line.0 - self.threshold.0;
        let t_ns = to_nanoseconds(time.0);
        let drop = self.factor_overdrive.eval(overdrive) * self.factor_time.eval(t_ns);
        // The fitted product is negative for a discharge; clamp so the model
        // never predicts a bit-line above VDD or below ground.
        (self.vdd_nominal.0 + drop).clamp(0.0, self.vdd_nominal.0)
    }

    /// Fills `out[i]` with the bit-line voltage at `times[i]`, batched and
    /// without domain validation.
    ///
    /// The overdrive factor `p4(V_od)` is evaluated once and the time factor
    /// `p2(t)` runs through the blocked Horner kernel
    /// ([`Polynomial::eval_many_in_place`]); every point performs the same
    /// floating-point operations in the same order as
    /// [`DischargeModel::bitline_voltage_unchecked`], so the fill is
    /// bit-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics when `times` and `out` have different lengths.
    pub fn fill_bitline_voltages_unchecked(
        &self,
        times: &[Seconds],
        word_line: Volts,
        out: &mut [f64],
    ) {
        assert_eq!(
            times.len(),
            out.len(),
            "fill_bitline_voltages_unchecked needs one output slot per time"
        );
        let overdrive_factor = self.factor_overdrive.eval(word_line.0 - self.threshold.0);
        for (o, t) in out.iter_mut().zip(times) {
            *o = to_nanoseconds(t.0);
        }
        self.factor_time.eval_many_in_place(out);
        for o in out.iter_mut() {
            *o = (self.vdd_nominal.0 + overdrive_factor * *o).clamp(0.0, self.vdd_nominal.0);
        }
    }

    /// Discharge `ΔV_BL = V_DD,nom − V_BL` (always non-negative).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] outside the calibrated domain.
    pub fn discharge(&self, time: Seconds, word_line: Volts) -> Result<Volts, ModelError> {
        let v = self.bitline_voltage(time, word_line)?;
        Ok(Volts((self.vdd_nominal.0 - v.0).max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> DischargeModel {
        // ΔV = 0.3 · V_od · t_ns  (negative drop in the fitted convention)
        DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -0.3]),
            Polynomial::new(vec![0.0, 1.0]),
            (0.0, 2.0),
            (0.3, 1.0),
        )
    }

    #[test]
    fn voltage_and_discharge_are_consistent() {
        let model = toy_model();
        let t = Seconds(1e-9);
        let v_wl = Volts(0.85);
        let v = model.bitline_voltage(t, v_wl).unwrap().0;
        let d = model.discharge(t, v_wl).unwrap().0;
        assert!((v + d - 1.0).abs() < 1e-12);
        assert!((d - 0.3 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn discharge_grows_with_time_and_word_line() {
        let model = toy_model();
        let d_early = model.discharge(Seconds(0.2e-9), Volts(0.8)).unwrap().0;
        let d_late = model.discharge(Seconds(1.5e-9), Volts(0.8)).unwrap().0;
        assert!(d_late > d_early);
        let d_low = model.discharge(Seconds(1.0e-9), Volts(0.6)).unwrap().0;
        let d_high = model.discharge(Seconds(1.0e-9), Volts(1.0)).unwrap().0;
        assert!(d_high > d_low);
    }

    #[test]
    fn voltage_is_clamped_to_physical_range() {
        // Huge fitted slope would predict a negative bit-line voltage.
        let model = DischargeModel::new(
            Volts(1.0),
            Volts(0.45),
            Polynomial::new(vec![0.0, -10.0]),
            Polynomial::new(vec![0.0, 1.0]),
            (0.0, 2.0),
            (0.3, 1.0),
        );
        let v = model.bitline_voltage(Seconds(2e-9), Volts(1.0)).unwrap().0;
        assert_eq!(v, 0.0);
        assert_eq!(model.discharge(Seconds(2e-9), Volts(1.0)).unwrap().0, 1.0);
    }

    #[test]
    fn domain_validation_rejects_far_out_of_range_queries() {
        let model = toy_model();
        assert!(model.bitline_voltage(Seconds(5e-9), Volts(0.8)).is_err());
        assert!(model.bitline_voltage(Seconds(1e-9), Volts(1.4)).is_err());
        assert!(model.bitline_voltage(Seconds(1e-9), Volts(0.1)).is_err());
        // Slightly outside (within the 10 % margin) is accepted.
        assert!(model.bitline_voltage(Seconds(2.1e-9), Volts(0.8)).is_ok());
    }

    #[test]
    fn batched_fill_is_bit_identical_to_scalar_path() {
        let model = toy_model();
        let times: Vec<Seconds> = (0..13)
            .map(|i| Seconds(0.1e-9 + 0.14e-9 * i as f64))
            .collect();
        let mut batched = vec![0.0; times.len()];
        model.fill_bitline_voltages_unchecked(&times, Volts(0.85), &mut batched);
        for (t, v) in times.iter().zip(&batched) {
            let scalar = model.bitline_voltage_unchecked(*t, Volts(0.85));
            assert_eq!(scalar.to_bits(), v.to_bits(), "t = {} s", t.0);
        }
    }

    #[test]
    fn accessors_expose_fitted_parts() {
        let model = toy_model();
        assert_eq!(model.vdd_nominal(), Volts(1.0));
        assert_eq!(model.threshold(), Volts(0.45));
        assert_eq!(model.vwl_range(), (0.3, 1.0));
        assert_eq!(model.time_range_ns(), (0.0, 2.0));
        assert_eq!(model.factor_time().degree(), 1);
        assert_eq!(model.factor_overdrive().degree(), 1);
    }
}
