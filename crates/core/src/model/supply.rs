//! Supply-voltage extension of the discharge model (paper Eq. 4).
//!
//! `V_BL(t, V_WL, V_DD) = V_BL(t, V_WL) · p2(ΔV_DD)` with
//! `ΔV_DD = V_DD − V_DD,nom`.

use optima_math::units::Volts;
use optima_math::Polynomial;
use serde::{Deserialize, Serialize};

/// Multiplicative supply-voltage correction factor.
///
/// # Example
///
/// ```rust
/// use optima_core::model::supply::SupplyModel;
/// use optima_math::Polynomial;
/// use optima_math::units::Volts;
///
/// // factor = 1 + ΔVDD (a crude but valid shape)
/// let model = SupplyModel::new(Volts(1.0), Polynomial::new(vec![1.0, 1.0]), (0.9, 1.1));
/// assert!((model.factor(Volts(1.1)) - 1.1).abs() < 1e-12);
/// assert!((model.apply(0.8, Volts(0.9)) - 0.72).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplyModel {
    vdd_nominal: Volts,
    /// `p2(ΔV_DD)` — correction polynomial in the supply deviation.
    correction: Polynomial,
    /// Calibrated supply-voltage range (volts).
    vdd_range: (f64, f64),
}

impl SupplyModel {
    /// Builds the supply model from its fitted polynomial.
    pub fn new(vdd_nominal: Volts, correction: Polynomial, vdd_range: (f64, f64)) -> Self {
        SupplyModel {
            vdd_nominal,
            correction,
            vdd_range,
        }
    }

    /// The identity model (factor 1 regardless of supply): used before
    /// calibration and in ablations that disable the supply correction.
    pub fn identity(vdd_nominal: Volts) -> Self {
        SupplyModel {
            vdd_nominal,
            correction: Polynomial::constant(1.0),
            vdd_range: (vdd_nominal.0, vdd_nominal.0),
        }
    }

    /// Nominal supply voltage.
    pub fn vdd_nominal(&self) -> Volts {
        self.vdd_nominal
    }

    /// The fitted correction polynomial.
    pub fn correction(&self) -> &Polynomial {
        &self.correction
    }

    /// Calibrated supply range.
    pub fn vdd_range(&self) -> (f64, f64) {
        self.vdd_range
    }

    /// Correction factor `p2(ΔV_DD)` for the given supply voltage.
    pub fn factor(&self, vdd: Volts) -> f64 {
        self.correction.eval(vdd.0 - self.vdd_nominal.0)
    }

    /// Applies the correction to a nominal-supply bit-line voltage.
    pub fn apply(&self, bitline_voltage: f64, vdd: Volts) -> f64 {
        (bitline_voltage * self.factor(vdd)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_model_is_a_no_op() {
        let model = SupplyModel::identity(Volts(1.0));
        assert_eq!(model.factor(Volts(0.9)), 1.0);
        assert_eq!(model.apply(0.73, Volts(1.1)), 0.73);
    }

    #[test]
    fn nominal_supply_gives_factor_from_constant_term() {
        let model = SupplyModel::new(
            Volts(1.0),
            Polynomial::new(vec![1.0, 0.5, -0.2]),
            (0.9, 1.1),
        );
        assert!((model.factor(Volts(1.0)) - 1.0).abs() < 1e-12);
        assert!(model.factor(Volts(1.1)) > 1.0);
        assert!(model.factor(Volts(0.9)) < 1.0);
    }

    #[test]
    fn apply_never_returns_negative_voltage() {
        let model = SupplyModel::new(Volts(1.0), Polynomial::new(vec![-2.0]), (0.9, 1.1));
        assert_eq!(model.apply(0.5, Volts(1.0)), 0.0);
    }

    #[test]
    fn accessors() {
        let model = SupplyModel::new(Volts(1.0), Polynomial::constant(1.0), (0.9, 1.1));
        assert_eq!(model.vdd_nominal(), Volts(1.0));
        assert_eq!(model.vdd_range(), (0.9, 1.1));
        assert_eq!(model.correction().degree(), 0);
    }
}
