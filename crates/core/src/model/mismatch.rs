//! Transistor-mismatch model (paper Eq. 6).
//!
//! Mismatch causes Gaussian variations of the bit-line voltage whose standard
//! deviation is modeled as `σ(t, V_WL) = p3(t) · p3(V_WL)`.  During
//! behavioural simulation the Gaussian with this σ is sampled for each
//! discharge, exactly as described in Section IV-C of the paper.

use crate::model::to_nanoseconds;
use optima_math::distributions::Gaussian;
use optima_math::units::{Seconds, Volts};
use optima_math::Polynomial;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Eq. 6 mismatch-σ model.
///
/// # Example
///
/// ```rust
/// use optima_core::model::mismatch::MismatchSigmaModel;
/// use optima_math::Polynomial;
/// use optima_math::units::{Seconds, Volts};
///
/// // σ = 1 mV · t[ns] · V_WL
/// let model = MismatchSigmaModel::new(
///     Polynomial::new(vec![0.0, 1e-3]),
///     Polynomial::new(vec![0.0, 1.0]),
/// );
/// let sigma = model.sigma(Seconds(1e-9), Volts(0.8));
/// assert!((sigma.0 - 0.8e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MismatchSigmaModel {
    /// `p3(t)` — time factor (argument in nanoseconds).
    factor_time: Polynomial,
    /// `p3(V_WL)` — word-line voltage factor.
    factor_wordline: Polynomial,
}

impl MismatchSigmaModel {
    /// Builds the model from its two fitted factors.
    pub fn new(factor_time: Polynomial, factor_wordline: Polynomial) -> Self {
        MismatchSigmaModel {
            factor_time,
            factor_wordline,
        }
    }

    /// A model with zero mismatch everywhere.
    pub fn zero() -> Self {
        MismatchSigmaModel {
            factor_time: Polynomial::zero(),
            factor_wordline: Polynomial::zero(),
        }
    }

    /// The fitted time factor.
    pub fn factor_time(&self) -> &Polynomial {
        &self.factor_time
    }

    /// The fitted word-line factor.
    pub fn factor_wordline(&self) -> &Polynomial {
        &self.factor_wordline
    }

    /// Standard deviation of the bit-line voltage at `(t, V_WL)`.
    ///
    /// Negative products (possible outside the calibrated domain) are clamped
    /// to zero, since a standard deviation cannot be negative.
    pub fn sigma(&self, time: Seconds, word_line: Volts) -> Volts {
        let t_ns = to_nanoseconds(time.0);
        let sigma = self.factor_time.eval(t_ns) * self.factor_wordline.eval(word_line.0);
        Volts(sigma.max(0.0))
    }

    /// Draws one Gaussian deviation sample for a discharge at `(t, V_WL)`.
    pub fn sample_deviation<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        time: Seconds,
        word_line: Volts,
    ) -> Volts {
        let sigma = self.sigma(time, word_line);
        if sigma.0 == 0.0 {
            return Volts(0.0);
        }
        Volts(Gaussian::new(0.0, sigma.0).sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optima_math::stats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_model() -> MismatchSigmaModel {
        MismatchSigmaModel::new(
            Polynomial::new(vec![0.0, 2e-3]),
            Polynomial::new(vec![0.0, 1.0]),
        )
    }

    #[test]
    fn sigma_grows_with_time_and_wordline() {
        // Fig. 5d: the mismatch-induced deviation grows with the applied WL voltage.
        let model = toy_model();
        let s_small = model.sigma(Seconds(0.2e-9), Volts(0.5)).0;
        let s_time = model.sigma(Seconds(1.0e-9), Volts(0.5)).0;
        let s_vwl = model.sigma(Seconds(0.2e-9), Volts(1.0)).0;
        assert!(s_time > s_small);
        assert!(s_vwl > s_small);
    }

    #[test]
    fn sigma_is_never_negative() {
        let model =
            MismatchSigmaModel::new(Polynomial::new(vec![-1.0]), Polynomial::new(vec![1.0]));
        assert_eq!(model.sigma(Seconds(1e-9), Volts(0.8)).0, 0.0);
    }

    #[test]
    fn zero_model_produces_zero_samples() {
        let model = MismatchSigmaModel::zero();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            model
                .sample_deviation(&mut rng, Seconds(1e-9), Volts(0.8))
                .0,
            0.0
        );
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let model = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sigma = model.sigma(Seconds(1e-9), Volts(0.8)).0;
        let samples: Vec<f64> = (0..20_000)
            .map(|_| {
                model
                    .sample_deviation(&mut rng, Seconds(1e-9), Volts(0.8))
                    .0
            })
            .collect();
        assert!(stats::mean(&samples).abs() < sigma * 0.05);
        assert!((stats::std_dev(&samples) - sigma).abs() < sigma * 0.05);
    }

    #[test]
    fn accessors_expose_factors() {
        let model = toy_model();
        assert_eq!(model.factor_time().degree(), 1);
        assert_eq!(model.factor_wordline().degree(), 1);
    }
}
