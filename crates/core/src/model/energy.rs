//! Energy models (paper Eqs. 7–8).
//!
//! * Write energy (Eq. 7) is data-independent:
//!   `E_wr(V_DD, T) = p2(V_DD) · p1(T)`.
//! * Discharge energy (Eq. 8) depends on the achieved bit-line discharge:
//!   `E_dc(d, V_DD, V_WL, T) = p1(V_DD) · p3(ΔV_BL) · p1(T)`, where `ΔV_BL`
//!   itself comes from the discharge models of Eqs. 3–5.
//!
//! Both models work in femtojoules internally (the natural scale of the data,
//! which keeps the least-squares fits well conditioned).

use optima_math::units::{Celsius, FemtoJoules, Volts};
use optima_math::Polynomial;
use serde::{Deserialize, Serialize};

/// The Eq. 7 write-energy model.
///
/// # Example
///
/// ```rust
/// use optima_core::model::energy::WriteEnergyModel;
/// use optima_math::Polynomial;
/// use optima_math::units::{Celsius, Volts};
///
/// // E = 20 fJ · VDD² (temperature-independent toy model)
/// let model = WriteEnergyModel::new(
///     Polynomial::new(vec![0.0, 0.0, 20.0]),
///     Polynomial::new(vec![1.0]),
/// );
/// assert!((model.energy(Volts(1.0), Celsius(25.0)).0 - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteEnergyModel {
    /// `p2(V_DD)` in femtojoules.
    factor_vdd: Polynomial,
    /// `p1(T)` dimensionless factor.
    factor_temperature: Polynomial,
}

impl WriteEnergyModel {
    /// Builds the model from its fitted factors.
    pub fn new(factor_vdd: Polynomial, factor_temperature: Polynomial) -> Self {
        WriteEnergyModel {
            factor_vdd,
            factor_temperature,
        }
    }

    /// The fitted supply-voltage factor.
    pub fn factor_vdd(&self) -> &Polynomial {
        &self.factor_vdd
    }

    /// The fitted temperature factor.
    pub fn factor_temperature(&self) -> &Polynomial {
        &self.factor_temperature
    }

    /// Write energy at the given operating point (clamped at zero).
    pub fn energy(&self, vdd: Volts, temperature: Celsius) -> FemtoJoules {
        let e = self.factor_vdd.eval(vdd.0) * self.factor_temperature.eval(temperature.0);
        FemtoJoules(e.max(0.0))
    }
}

/// The Eq. 8 discharge-energy model.
///
/// # Example
///
/// ```rust
/// use optima_core::model::energy::DischargeEnergyModel;
/// use optima_math::Polynomial;
/// use optima_math::units::{Celsius, Volts};
///
/// // E = 100 fJ/V · ΔV (supply- and temperature-independent toy model)
/// let model = DischargeEnergyModel::new(
///     Polynomial::new(vec![1.0]),
///     Polynomial::new(vec![0.0, 100.0]),
///     Polynomial::new(vec![1.0]),
/// );
/// let e = model.energy(Volts(0.2), Volts(1.0), Celsius(25.0));
/// assert!((e.0 - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DischargeEnergyModel {
    /// `p1(V_DD)` dimensionless factor.
    factor_vdd: Polynomial,
    /// `p3(ΔV_BL)` in femtojoules.
    factor_discharge: Polynomial,
    /// `p1(T)` dimensionless factor.
    factor_temperature: Polynomial,
}

impl DischargeEnergyModel {
    /// Builds the model from its fitted factors.
    pub fn new(
        factor_vdd: Polynomial,
        factor_discharge: Polynomial,
        factor_temperature: Polynomial,
    ) -> Self {
        DischargeEnergyModel {
            factor_vdd,
            factor_discharge,
            factor_temperature,
        }
    }

    /// The fitted supply-voltage factor.
    pub fn factor_vdd(&self) -> &Polynomial {
        &self.factor_vdd
    }

    /// The fitted discharge factor.
    pub fn factor_discharge(&self) -> &Polynomial {
        &self.factor_discharge
    }

    /// The fitted temperature factor.
    pub fn factor_temperature(&self) -> &Polynomial {
        &self.factor_temperature
    }

    /// Discharge energy for an achieved bit-line discharge `delta_v` at the
    /// given operating point (clamped at zero).
    pub fn energy(&self, delta_v: Volts, vdd: Volts, temperature: Celsius) -> FemtoJoules {
        let e = self.factor_vdd.eval(vdd.0)
            * self.factor_discharge.eval(delta_v.0.max(0.0))
            * self.factor_temperature.eval(temperature.0);
        FemtoJoules(e.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_energy_scales_with_vdd_factor() {
        let model = WriteEnergyModel::new(
            Polynomial::new(vec![0.0, 0.0, 30.0]),
            Polynomial::new(vec![1.0, 0.001]),
        );
        let nominal = model.energy(Volts(1.0), Celsius(25.0)).0;
        let high = model.energy(Volts(1.1), Celsius(25.0)).0;
        assert!((high / nominal - 1.21).abs() < 1e-9);
        let hot = model.energy(Volts(1.0), Celsius(125.0)).0;
        assert!(hot > nominal);
    }

    #[test]
    fn write_energy_is_clamped_at_zero() {
        let model = WriteEnergyModel::new(Polynomial::new(vec![-5.0]), Polynomial::new(vec![1.0]));
        assert_eq!(model.energy(Volts(1.0), Celsius(25.0)).0, 0.0);
    }

    #[test]
    fn discharge_energy_grows_with_delta_v() {
        let model = DischargeEnergyModel::new(
            Polynomial::new(vec![1.0]),
            Polynomial::new(vec![0.0, 50.0, 10.0]),
            Polynomial::new(vec![1.0]),
        );
        let small = model.energy(Volts(0.1), Volts(1.0), Celsius(25.0)).0;
        let large = model.energy(Volts(0.4), Volts(1.0), Celsius(25.0)).0;
        assert!(large > small);
        // Negative discharges are treated as zero discharge.
        assert_eq!(
            model.energy(Volts(-0.3), Volts(1.0), Celsius(25.0)).0,
            model.energy(Volts(0.0), Volts(1.0), Celsius(25.0)).0
        );
    }

    #[test]
    fn accessors_expose_factors() {
        let model = DischargeEnergyModel::new(
            Polynomial::new(vec![1.0, 0.5]),
            Polynomial::new(vec![0.0, 1.0, 2.0, 3.0]),
            Polynomial::new(vec![1.0, 0.0]),
        );
        assert_eq!(model.factor_vdd().degree(), 1);
        assert_eq!(model.factor_discharge().degree(), 3);
        assert_eq!(model.factor_temperature().degree(), 0);
        let write = WriteEnergyModel::new(Polynomial::constant(1.0), Polynomial::constant(1.0));
        assert_eq!(write.factor_vdd().degree(), 0);
        assert_eq!(write.factor_temperature().degree(), 0);
    }
}
