//! The combined OPTIMA model suite.
//!
//! [`ModelSuite`] bundles the discharge, supply, temperature, mismatch and
//! energy models into the single object used by the event simulator, the
//! in-SRAM multiplier case study and the DNN evaluation.

use crate::error::ModelError;
use crate::model::discharge::DischargeModel;
use crate::model::energy::{DischargeEnergyModel, WriteEnergyModel};
use crate::model::mismatch::MismatchSigmaModel;
use crate::model::supply::SupplyModel;
use crate::model::temperature::TemperatureModel;
use optima_math::units::{Celsius, FemtoJoules, Seconds, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// All OPTIMA behavioural models of one calibrated technology.
///
/// Constructed by [`crate::calibration::Calibrator::run`]; the individual
/// models can also be assembled by hand (e.g. in tests or to load previously
/// exported coefficients).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSuite {
    discharge: DischargeModel,
    supply: SupplyModel,
    temperature: TemperatureModel,
    mismatch: MismatchSigmaModel,
    write_energy: WriteEnergyModel,
    discharge_energy: DischargeEnergyModel,
}

impl ModelSuite {
    /// Assembles a suite from its individually fitted models.
    pub fn new(
        discharge: DischargeModel,
        supply: SupplyModel,
        temperature: TemperatureModel,
        mismatch: MismatchSigmaModel,
        write_energy: WriteEnergyModel,
        discharge_energy: DischargeEnergyModel,
    ) -> Self {
        ModelSuite {
            discharge,
            supply,
            temperature,
            mismatch,
            write_energy,
            discharge_energy,
        }
    }

    /// The Eq. 3 discharge model.
    pub fn discharge_model(&self) -> &DischargeModel {
        &self.discharge
    }

    /// The Eq. 4 supply model.
    pub fn supply_model(&self) -> &SupplyModel {
        &self.supply
    }

    /// The Eq. 5 temperature model.
    pub fn temperature_model(&self) -> &TemperatureModel {
        &self.temperature
    }

    /// The Eq. 6 mismatch model.
    pub fn mismatch_model(&self) -> &MismatchSigmaModel {
        &self.mismatch
    }

    /// The Eq. 7 write-energy model.
    pub fn write_energy_model(&self) -> &WriteEnergyModel {
        &self.write_energy
    }

    /// The Eq. 8 discharge-energy model.
    pub fn discharge_energy_model(&self) -> &DischargeEnergyModel {
        &self.discharge_energy
    }

    /// Nominal supply voltage of the calibrated technology.
    pub fn vdd_nominal(&self) -> Volts {
        self.discharge.vdd_nominal()
    }

    /// Nominal temperature of the calibrated technology.
    pub fn temperature_nominal(&self) -> Celsius {
        self.temperature.temperature_nominal()
    }

    /// Bit-line voltage after a discharge of duration `time` at word-line
    /// voltage `word_line`, for a cell storing '1', under the given supply
    /// and temperature (Eqs. 3–5 combined).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] when `(time, word_line)`
    /// lies outside the calibrated domain.
    pub fn bitline_voltage(
        &self,
        time: Seconds,
        word_line: Volts,
        vdd: Volts,
        temperature: Celsius,
    ) -> Result<Volts, ModelError> {
        self.discharge.check_domain(time, word_line)?;
        Ok(Volts(self.bitline_voltage_unchecked(
            time,
            word_line,
            vdd,
            temperature,
        )))
    }

    /// Unchecked fast path of [`ModelSuite::bitline_voltage`] used inside hot
    /// loops (the domain should be validated once up front).
    pub fn bitline_voltage_unchecked(
        &self,
        time: Seconds,
        word_line: Volts,
        vdd: Volts,
        temperature: Celsius,
    ) -> f64 {
        let base = self.discharge.bitline_voltage_unchecked(time, word_line);
        let with_supply = self.supply.apply(base, vdd);
        self.temperature
            .apply(with_supply, time, word_line, temperature)
    }

    /// Fills `out[i]` with the bit-line voltage at `times[i]` (batched
    /// Eqs. 3–5, no domain validation).
    ///
    /// The per-condition scalars — overdrive factor, supply correction and
    /// temperature sensitivity — are evaluated once, and the time polynomial
    /// runs through the blocked Horner kernel; every point performs the same
    /// floating-point operations in the same order as
    /// [`ModelSuite::bitline_voltage_unchecked`], so the fill is
    /// bit-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics when `times` and `out` have different lengths.
    pub fn fill_bitline_voltages_unchecked(
        &self,
        times: &[Seconds],
        word_line: Volts,
        vdd: Volts,
        temperature: Celsius,
        out: &mut [f64],
    ) {
        self.discharge
            .fill_bitline_voltages_unchecked(times, word_line, out);
        let supply_factor = self.supply.factor(vdd);
        let delta_t = temperature.0 - self.temperature.temperature_nominal().0;
        let sensitivity = self.temperature.sensitivity().eval(word_line.0);
        for (o, t) in out.iter_mut().zip(times) {
            let with_supply = (*o * supply_factor).max(0.0);
            let t_ns = crate::model::to_nanoseconds(t.0);
            *o = (with_supply + t_ns * delta_t * sensitivity).max(0.0);
        }
    }

    /// Fills `out[i]` with the discharge `ΔV_BL` at `times[i]` for a cell
    /// storing `stored_bit` (the batched equivalent of
    /// [`ModelSuite::discharge`], bit-identical to calling it per point).
    ///
    /// This is the kernel behind the batched multiplier-table construction
    /// and the PVT corner sweeps: one call evaluates a whole time grid at a
    /// fixed word-line voltage, with each `(time, word_line)` point still
    /// validated against the calibrated domain.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] for the first (lowest
    /// index) point outside the calibrated domain; `out` is unspecified in
    /// that case.
    ///
    /// # Panics
    ///
    /// Panics when `times` and `out` have different lengths.
    pub fn fill_discharges(
        &self,
        times: &[Seconds],
        word_line: Volts,
        stored_bit: bool,
        vdd: Volts,
        temperature: Celsius,
        out: &mut [f64],
    ) -> Result<(), ModelError> {
        assert_eq!(
            times.len(),
            out.len(),
            "fill_discharges needs one output slot per time"
        );
        if !stored_bit {
            out.fill(0.0);
            return Ok(());
        }
        for &t in times {
            self.discharge.check_domain(t, word_line)?;
        }
        self.fill_bitline_voltages_unchecked(times, word_line, vdd, temperature, out);
        let precharge = self.precharge_level(vdd);
        for o in out.iter_mut() {
            *o = (precharge.0 - *o).max(0.0);
        }
        Ok(())
    }

    /// Fills `out` with the bit-line voltage over a whole
    /// `word_lines × times` operand grid (row-major: one row of
    /// `times.len()` values per word line), without domain validation.
    /// Bit-identical to the scalar path like
    /// [`ModelSuite::fill_bitline_voltages_unchecked`].
    ///
    /// # Panics
    ///
    /// Panics when `out` is not exactly `word_lines.len() * times.len()` long.
    pub fn fill_bitline_voltage_grid_unchecked(
        &self,
        times: &[Seconds],
        word_lines: &[Volts],
        vdd: Volts,
        temperature: Celsius,
        out: &mut [f64],
    ) {
        assert_eq!(
            out.len(),
            word_lines.len() * times.len(),
            "fill_bitline_voltage_grid_unchecked needs one slot per grid point"
        );
        for (row, &word_line) in out.chunks_exact_mut(times.len()).zip(word_lines) {
            self.fill_bitline_voltages_unchecked(times, word_line, vdd, temperature, row);
        }
    }

    /// Bit-line discharge `ΔV_BL` (relative to the supply-scaled pre-charge
    /// level) for a cell storing `stored_bit`.
    ///
    /// A cell storing '0' does not discharge at all (Eq. 1), which is where
    /// the multiplication property comes from.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] outside the calibrated domain.
    pub fn discharge(
        &self,
        time: Seconds,
        word_line: Volts,
        stored_bit: bool,
        vdd: Volts,
        temperature: Celsius,
    ) -> Result<Volts, ModelError> {
        if !stored_bit {
            return Ok(Volts(0.0));
        }
        let precharge_level = self.precharge_level(vdd);
        let v_bl = self.bitline_voltage(time, word_line, vdd, temperature)?;
        Ok(Volts((precharge_level.0 - v_bl.0).max(0.0)))
    }

    /// The pre-charge level the bit-line starts from at the given supply
    /// voltage (the supply-corrected model value at `t = 0`).
    pub fn precharge_level(&self, vdd: Volts) -> Volts {
        let base = self.discharge.vdd_nominal().0;
        Volts(self.supply.apply(base, vdd))
    }

    /// Mismatch standard deviation at `(time, word_line)` (Eq. 6).
    pub fn mismatch_sigma(&self, time: Seconds, word_line: Volts) -> Volts {
        self.mismatch.sigma(time, word_line)
    }

    /// Like [`ModelSuite::discharge`], but adds a Gaussian mismatch sample
    /// drawn from the Eq. 6 σ-model, emulating one Monte Carlo instance.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfCalibrationRange`] outside the calibrated domain.
    pub fn discharge_with_mismatch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        time: Seconds,
        word_line: Volts,
        stored_bit: bool,
        vdd: Volts,
        temperature: Celsius,
    ) -> Result<Volts, ModelError> {
        let nominal = self.discharge(time, word_line, stored_bit, vdd, temperature)?;
        if !stored_bit {
            return Ok(nominal);
        }
        let deviation = self.mismatch.sample_deviation(rng, time, word_line);
        Ok(Volts((nominal.0 + deviation.0).max(0.0)))
    }

    /// Write energy at the given operating point (Eq. 7).
    pub fn write_energy(&self, vdd: Volts, temperature: Celsius) -> FemtoJoules {
        self.write_energy.energy(vdd, temperature)
    }

    /// Discharge energy for an achieved discharge `delta_v` (Eq. 8).
    pub fn discharge_energy(
        &self,
        delta_v: Volts,
        vdd: Volts,
        temperature: Celsius,
    ) -> FemtoJoules {
        self.discharge_energy.energy(delta_v, vdd, temperature)
    }

    /// Total energy of one operation consisting of a write followed by a
    /// discharge of `delta_v`.
    pub fn operation_energy(
        &self,
        delta_v: Volts,
        vdd: Volts,
        temperature: Celsius,
    ) -> FemtoJoules {
        FemtoJoules(
            self.write_energy(vdd, temperature).0
                + self.discharge_energy(delta_v, vdd, temperature).0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optima_math::Polynomial;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A hand-assembled suite with simple analytic behaviour:
    /// ΔV = 0.3·V_od·t[ns], ±2 % per 0.1 V supply error, tiny temperature term.
    pub(crate) fn toy_suite() -> ModelSuite {
        ModelSuite::new(
            DischargeModel::new(
                Volts(1.0),
                Volts(0.45),
                Polynomial::new(vec![0.0, -0.3]),
                Polynomial::new(vec![0.0, 1.0]),
                (0.0, 3.0),
                (0.0, 1.1),
            ),
            SupplyModel::new(Volts(1.0), Polynomial::new(vec![1.0, 0.2]), (0.9, 1.1)),
            TemperatureModel::new(Celsius(25.0), Polynomial::new(vec![5e-5]), (-40.0, 125.0)),
            MismatchSigmaModel::new(
                Polynomial::new(vec![0.0, 2e-3]),
                Polynomial::new(vec![0.0, 1.0]),
            ),
            WriteEnergyModel::new(
                Polynomial::new(vec![0.0, 0.0, 25.0]),
                Polynomial::new(vec![1.0, 5e-4]),
            ),
            DischargeEnergyModel::new(
                Polynomial::new(vec![0.0, 1.0]),
                Polynomial::new(vec![0.0, 40.0]),
                Polynomial::new(vec![1.0, 3e-4]),
            ),
        )
    }

    #[test]
    fn zero_stored_bit_never_discharges() {
        let suite = toy_suite();
        let d = suite
            .discharge(Seconds(1e-9), Volts(1.0), false, Volts(1.0), Celsius(25.0))
            .unwrap();
        assert_eq!(d.0, 0.0);
    }

    #[test]
    fn discharge_combines_all_corrections() {
        let suite = toy_suite();
        let nominal = suite
            .discharge(Seconds(1e-9), Volts(0.85), true, Volts(1.0), Celsius(25.0))
            .unwrap()
            .0;
        assert!((nominal - 0.3 * 0.4).abs() < 1e-9);
        // Higher supply scales both the pre-charge level and the curve.
        let high_vdd = suite
            .discharge(Seconds(1e-9), Volts(0.85), true, Volts(1.1), Celsius(25.0))
            .unwrap()
            .0;
        assert!((high_vdd - nominal).abs() < 0.05);
        // Hot silicon adds the (small) additive term.
        let hot = suite
            .discharge(Seconds(1e-9), Volts(0.85), true, Volts(1.0), Celsius(125.0))
            .unwrap()
            .0;
        assert!((hot - nominal).abs() < 0.02);
        assert!(hot != nominal);
    }

    #[test]
    fn precharge_level_tracks_supply() {
        let suite = toy_suite();
        assert!((suite.precharge_level(Volts(1.0)).0 - 1.0).abs() < 1e-12);
        assert!(suite.precharge_level(Volts(1.1)).0 > 1.0);
        assert!(suite.precharge_level(Volts(0.9)).0 < 1.0);
    }

    #[test]
    fn out_of_range_queries_are_rejected() {
        let suite = toy_suite();
        assert!(suite
            .bitline_voltage(Seconds(10e-9), Volts(0.8), Volts(1.0), Celsius(25.0))
            .is_err());
        assert!(suite
            .discharge(Seconds(1e-9), Volts(2.0), true, Volts(1.0), Celsius(25.0))
            .is_err());
    }

    #[test]
    fn mismatch_sampling_perturbs_the_discharge() {
        let suite = toy_suite();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let nominal = suite
            .discharge(Seconds(1e-9), Volts(0.9), true, Volts(1.0), Celsius(25.0))
            .unwrap()
            .0;
        let mut any_different = false;
        for _ in 0..32 {
            let sampled = suite
                .discharge_with_mismatch(
                    &mut rng,
                    Seconds(1e-9),
                    Volts(0.9),
                    true,
                    Volts(1.0),
                    Celsius(25.0),
                )
                .unwrap()
                .0;
            assert!(sampled >= 0.0);
            if (sampled - nominal).abs() > 1e-6 {
                any_different = true;
            }
        }
        assert!(any_different, "mismatch sampling must perturb the value");
        // A '0' cell is unaffected by mismatch.
        let zero = suite
            .discharge_with_mismatch(
                &mut rng,
                Seconds(1e-9),
                Volts(0.9),
                false,
                Volts(1.0),
                Celsius(25.0),
            )
            .unwrap();
        assert_eq!(zero.0, 0.0);
    }

    #[test]
    fn batched_fills_are_bit_identical_to_scalar_paths() {
        let suite = toy_suite();
        let times: Vec<Seconds> = (0..11)
            .map(|i| Seconds(0.1e-9 + 0.17e-9 * i as f64))
            .collect();
        let word_lines = [Volts(0.6), Volts(0.85), Volts(1.0)];
        let vdd = Volts(1.05);
        let temp = Celsius(75.0);

        let mut voltages = vec![0.0; times.len()];
        let mut discharges = vec![0.0; times.len()];
        let mut grid = vec![0.0; times.len() * word_lines.len()];
        suite.fill_bitline_voltage_grid_unchecked(&times, &word_lines, vdd, temp, &mut grid);
        for (w, &word_line) in word_lines.iter().enumerate() {
            suite.fill_bitline_voltages_unchecked(&times, word_line, vdd, temp, &mut voltages);
            suite
                .fill_discharges(&times, word_line, true, vdd, temp, &mut discharges)
                .unwrap();
            for (i, &t) in times.iter().enumerate() {
                let scalar_v = suite.bitline_voltage_unchecked(t, word_line, vdd, temp);
                let scalar_d = suite.discharge(t, word_line, true, vdd, temp).unwrap().0;
                assert_eq!(scalar_v.to_bits(), voltages[i].to_bits());
                assert_eq!(scalar_v.to_bits(), grid[w * times.len() + i].to_bits());
                assert_eq!(scalar_d.to_bits(), discharges[i].to_bits());
            }
        }

        // A stored '0' never discharges, batched or scalar.
        suite
            .fill_discharges(&times, Volts(0.9), false, vdd, temp, &mut discharges)
            .unwrap();
        assert!(discharges.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn batched_discharge_fill_validates_every_grid_point() {
        let suite = toy_suite();
        let mut out = [0.0; 2];
        // 10 ns is far outside the 3 ns calibrated window of the toy suite.
        let err = suite
            .fill_discharges(
                &[Seconds(1e-9), Seconds(10e-9)],
                Volts(0.9),
                true,
                Volts(1.0),
                Celsius(25.0),
                &mut out,
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::OutOfCalibrationRange { .. }));
    }

    #[test]
    fn energies_combine_into_operation_energy() {
        let suite = toy_suite();
        let write = suite.write_energy(Volts(1.0), Celsius(25.0)).0;
        let discharge = suite
            .discharge_energy(Volts(0.2), Volts(1.0), Celsius(25.0))
            .0;
        let total = suite
            .operation_energy(Volts(0.2), Volts(1.0), Celsius(25.0))
            .0;
        assert!((total - (write + discharge)).abs() < 1e-12);
        assert!(write > 0.0 && discharge > 0.0);
    }

    #[test]
    fn accessors_return_component_models() {
        let suite = toy_suite();
        assert_eq!(suite.vdd_nominal(), Volts(1.0));
        assert_eq!(suite.temperature_nominal(), Celsius(25.0));
        assert_eq!(suite.discharge_model().threshold(), Volts(0.45));
        assert_eq!(suite.supply_model().vdd_nominal(), Volts(1.0));
        assert!(suite.mismatch_model().sigma(Seconds(1e-9), Volts(1.0)).0 > 0.0);
        assert!(
            suite
                .write_energy_model()
                .energy(Volts(1.0), Celsius(25.0))
                .0
                > 0.0
        );
        assert!(
            suite
                .discharge_energy_model()
                .energy(Volts(0.1), Volts(1.0), Celsius(25.0))
                .0
                > 0.0
        );
        assert!(suite.temperature_model().sensitivity().coeffs()[0] > 0.0);
    }
}
