//! The unified discharge-backend interface.
//!
//! The paper's entire value proposition is a runtime ratio between two ways
//! of answering the same questions about one bit-line discharge:
//!
//! * the **golden reference** — differential-equation circuit simulation
//!   ([`optima_circuit::transient::TransientSimulator`], slow but exact), and
//! * the **fitted OPTIMA models** — polynomial evaluation
//!   ([`ModelSuite`], fast, calibrated against the former).
//!
//! [`DischargeBackend`] is the common interface both implement: the
//! discharge waveform sampled on an arbitrary time grid, the final bit-line
//! voltage, and the write/discharge energies, all at an explicit
//! [`PvtConditions`] operating point.  Calibration residual measurement,
//! held-out evaluation ([`crate::evaluation::ModelEvaluator`]) and the
//! speed-up experiments all route through this trait, so accuracy and
//! speed-up are always measured between two interchangeable backends rather
//! than through per-call-site glue.
//!
//! Two deliberate asymmetries remain below the interface:
//!
//! * **Mismatch** — the golden reference perturbs device parameters with a
//!   [`optima_circuit::montecarlo::MismatchSample`] per instance, while the
//!   fitted side samples the Eq. 6 σ-model; the shapes are incompatible, so
//!   Monte-Carlo sweeps keep their backend-specific entry points.
//! * **Process corner** — the fitted models are calibrated at the typical
//!   corner; the [`ModelSuite`] backend ignores `pvt.corner` (documented on
//!   the impl), while the golden backend honours it.

use crate::error::ModelError;
use crate::model::suite::ModelSuite;
use optima_circuit::energy as circuit_energy;
use optima_circuit::montecarlo::MismatchSample;
use optima_circuit::pvt::PvtConditions;
use optima_circuit::transient::{DischargeStimulus, TransientSimulator};
use optima_math::units::{FemtoJoules, Seconds, Volts};

/// A backend that can answer the analog questions about one bit-line
/// discharge operation at an explicit PVT operating point.
///
/// Implemented by the golden-reference [`TransientSimulator`] (RK circuit
/// integration) and by the fitted [`ModelSuite`] (batched polynomial
/// evaluation).  See the [module docs](self) for what deliberately stays
/// outside the interface.
pub trait DischargeBackend: Sync {
    /// Short human-readable backend name for reports and error messages.
    fn backend_name(&self) -> &'static str;

    /// Fills `out[i]` with the bit-line voltage at `times[i]` during the
    /// discharge described by `stimulus` at `pvt`.
    ///
    /// Every time must lie within `[0, stimulus.duration]`.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation or model-evaluation errors.
    fn fill_bitline_voltages(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        times: &[Seconds],
        out: &mut [f64],
    ) -> Result<(), ModelError>;

    /// Allocating convenience wrapper around
    /// [`DischargeBackend::fill_bitline_voltages`].
    ///
    /// # Errors
    ///
    /// Same as [`DischargeBackend::fill_bitline_voltages`].
    fn bitline_voltages(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        times: &[Seconds],
    ) -> Result<Vec<f64>, ModelError> {
        let mut out = vec![0.0; times.len()];
        self.fill_bitline_voltages(stimulus, pvt, times, &mut out)?;
        Ok(out)
    }

    /// Bit-line voltage at the end of the stimulus.
    ///
    /// # Errors
    ///
    /// Same as [`DischargeBackend::fill_bitline_voltages`].
    fn final_bitline_voltage(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
    ) -> Result<Volts, ModelError> {
        let mut out = [0.0];
        self.fill_bitline_voltages(stimulus, pvt, &[stimulus.duration], &mut out)?;
        Ok(Volts(out[0]))
    }

    /// Discharge `ΔV_BL` achieved over the whole stimulus (pre-charge level
    /// minus final bit-line voltage).
    ///
    /// # Errors
    ///
    /// Same as [`DischargeBackend::fill_bitline_voltages`].
    fn discharge_delta(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
    ) -> Result<Volts, ModelError>;

    /// Energy of writing one cell at `pvt` (Eq. 7 territory).
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation or model-evaluation errors.
    fn write_energy(&self, pvt: &PvtConditions) -> Result<FemtoJoules, ModelError>;

    /// Energy of one discharge that achieved `delta` on the bit-line of
    /// `stimulus` at `pvt` (Eq. 8 territory).
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation or model-evaluation errors.
    fn discharge_energy(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        delta: Volts,
    ) -> Result<FemtoJoules, ModelError>;
}

/// The golden reference: every query runs the RK transient integrator (one
/// integration per waveform query, sampled on the requested grid) or the
/// analytic circuit energy models.
impl DischargeBackend for TransientSimulator {
    fn backend_name(&self) -> &'static str {
        "golden-rk-circuit"
    }

    fn fill_bitline_voltages(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        times: &[Seconds],
        out: &mut [f64],
    ) -> Result<(), ModelError> {
        assert_eq!(
            times.len(),
            out.len(),
            "fill_bitline_voltages needs one output slot per time"
        );
        let waveform = self.discharge_waveform(stimulus, pvt, &MismatchSample::none())?;
        for (o, &t) in out.iter_mut().zip(times) {
            *o = waveform.sample_at(t)?.0;
        }
        Ok(())
    }

    fn discharge_delta(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
    ) -> Result<Volts, ModelError> {
        Ok(TransientSimulator::discharge_delta(
            self,
            stimulus,
            pvt,
            &MismatchSample::none(),
        )?)
    }

    fn write_energy(&self, pvt: &PvtConditions) -> Result<FemtoJoules, ModelError> {
        Ok(circuit_energy::write_energy(self.technology(), pvt).to_femtojoules())
    }

    fn discharge_energy(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        delta: Volts,
    ) -> Result<FemtoJoules, ModelError> {
        Ok(circuit_energy::discharge_energy(
            self.technology(),
            pvt,
            stimulus.cells_on_bitline,
            delta,
        )
        .to_femtojoules())
    }
}

/// The fitted OPTIMA models: every query is batched polynomial evaluation
/// (Eqs. 3–8) — no differential equations are solved, which is where the
/// paper's speed-up comes from.
///
/// `stimulus.time_steps` and `stimulus.cells_on_bitline` are ignored (the
/// fitted surfaces already absorbed the calibrated bit-line loading), and so
/// is `pvt.corner`: the models are calibrated at the typical corner.
impl DischargeBackend for ModelSuite {
    fn backend_name(&self) -> &'static str {
        "fitted-optima-models"
    }

    fn fill_bitline_voltages(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        times: &[Seconds],
        out: &mut [f64],
    ) -> Result<(), ModelError> {
        assert_eq!(
            times.len(),
            out.len(),
            "fill_bitline_voltages needs one output slot per time"
        );
        if !stimulus.stored_bit {
            out.fill(self.precharge_level(pvt.vdd).0);
            return Ok(());
        }
        for &t in times {
            self.discharge_model()
                .check_domain(t, stimulus.word_line_voltage)?;
        }
        self.fill_bitline_voltages_unchecked(
            times,
            stimulus.word_line_voltage,
            pvt.vdd,
            pvt.temperature,
            out,
        );
        Ok(())
    }

    fn discharge_delta(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
    ) -> Result<Volts, ModelError> {
        self.discharge(
            stimulus.duration,
            stimulus.word_line_voltage,
            stimulus.stored_bit,
            pvt.vdd,
            pvt.temperature,
        )
    }

    fn write_energy(&self, pvt: &PvtConditions) -> Result<FemtoJoules, ModelError> {
        Ok(ModelSuite::write_energy(self, pvt.vdd, pvt.temperature))
    }

    fn discharge_energy(
        &self,
        _stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        delta: Volts,
    ) -> Result<FemtoJoules, ModelError> {
        Ok(ModelSuite::discharge_energy(
            self,
            delta,
            pvt.vdd,
            pvt.temperature,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{CalibrationConfig, Calibrator};
    use optima_circuit::technology::Technology;
    use optima_math::units::Celsius;

    fn backends() -> (Technology, TransientSimulator, ModelSuite) {
        let tech = Technology::tsmc65_like();
        let models = Calibrator::new(tech.clone(), CalibrationConfig::fast())
            .run()
            .expect("calibration succeeds")
            .into_models();
        (tech.clone(), TransientSimulator::new(tech), models)
    }

    fn stimulus(v_wl: f64) -> DischargeStimulus {
        DischargeStimulus {
            word_line_voltage: Volts(v_wl),
            stored_bit: true,
            duration: Seconds(2e-9),
            cells_on_bitline: 16,
            time_steps: 200,
        }
    }

    #[test]
    fn both_backends_agree_on_the_waveform_within_calibration_accuracy() {
        let (tech, golden, fitted) = backends();
        let pvt = PvtConditions::nominal(&tech);
        let times: Vec<Seconds> = (1..=6).map(|i| Seconds(0.3e-9 * i as f64)).collect();
        let stim = stimulus(0.8);
        let reference = golden.bitline_voltages(&stim, &pvt, &times).unwrap();
        let predicted = fitted.bitline_voltages(&stim, &pvt, &times).unwrap();
        for (r, p) in reference.iter().zip(&predicted) {
            assert!((r - p).abs() < 0.02, "reference {r} vs fitted {p}");
        }
        assert_ne!(golden.backend_name(), fitted.backend_name());
    }

    #[test]
    fn fitted_backend_matches_the_scalar_model_suite_bit_for_bit() {
        let (tech, _, fitted) = backends();
        let pvt = PvtConditions::nominal(&tech).with_temperature(Celsius(60.0));
        let times: Vec<Seconds> = (1..=9).map(|i| Seconds(0.2e-9 * i as f64)).collect();
        let stim = stimulus(0.75);
        let batched = fitted.bitline_voltages(&stim, &pvt, &times).unwrap();
        for (&t, v) in times.iter().zip(&batched) {
            let scalar = fitted.bitline_voltage_unchecked(
                t,
                stim.word_line_voltage,
                pvt.vdd,
                pvt.temperature,
            );
            assert_eq!(scalar.to_bits(), v.to_bits());
        }
        let delta = DischargeBackend::discharge_delta(&fitted, &stim, &pvt).unwrap();
        let scalar_delta = fitted
            .discharge(
                stim.duration,
                stim.word_line_voltage,
                true,
                pvt.vdd,
                pvt.temperature,
            )
            .unwrap();
        assert_eq!(delta, scalar_delta);
    }

    #[test]
    fn stored_zero_keeps_both_backends_at_the_precharge_level() {
        let (tech, golden, fitted) = backends();
        let pvt = PvtConditions::nominal(&tech);
        let stim = DischargeStimulus {
            stored_bit: false,
            ..stimulus(0.8)
        };
        let times = [Seconds(1e-9)];
        let golden_v = golden.bitline_voltages(&stim, &pvt, &times).unwrap()[0];
        let fitted_v = fitted.bitline_voltages(&stim, &pvt, &times).unwrap()[0];
        assert!((golden_v - pvt.vdd.0).abs() < 1e-9);
        assert!((fitted_v - fitted.precharge_level(pvt.vdd).0).abs() < 1e-12);
    }

    #[test]
    fn energies_agree_within_calibration_accuracy() {
        let (tech, golden, fitted) = backends();
        let pvt = PvtConditions::nominal(&tech);
        let stim = stimulus(0.8);
        let w_ref = DischargeBackend::write_energy(&golden, &pvt).unwrap().0;
        let w_fit = DischargeBackend::write_energy(&fitted, &pvt).unwrap().0;
        assert!((w_ref - w_fit).abs() < 1.0, "write {w_ref} vs {w_fit} fJ");
        let delta = DischargeBackend::discharge_delta(&golden, &stim, &pvt).unwrap();
        let d_ref = DischargeBackend::discharge_energy(&golden, &stim, &pvt, delta)
            .unwrap()
            .0;
        let d_fit = DischargeBackend::discharge_energy(&fitted, &stim, &pvt, delta)
            .unwrap()
            .0;
        assert!(
            (d_ref - d_fit).abs() < 2.0,
            "discharge {d_ref} vs {d_fit} fJ"
        );
    }

    #[test]
    fn fitted_backend_rejects_out_of_domain_grids() {
        let (tech, _, fitted) = backends();
        let pvt = PvtConditions::nominal(&tech);
        let err = fitted
            .bitline_voltages(&stimulus(0.8), &pvt, &[Seconds(10e-9)])
            .unwrap_err();
        assert!(matches!(err, ModelError::OutOfCalibrationRange { .. }));
    }

    #[test]
    fn final_voltage_default_matches_the_last_grid_point() {
        let (tech, golden, fitted) = backends();
        let pvt = PvtConditions::nominal(&tech);
        let stim = stimulus(0.9);
        for backend in [&golden as &dyn DischargeBackend, &fitted] {
            let v = backend.final_bitline_voltage(&stim, &pvt).unwrap();
            let sampled = backend
                .bitline_voltages(&stim, &pvt, &[stim.duration])
                .unwrap()[0];
            assert_eq!(
                v.0.to_bits(),
                sampled.to_bits(),
                "{}",
                backend.backend_name()
            );
        }
    }
}
