//! OPTIMA: behavioural modeling framework for discharge-based in-SRAM computing.
//!
//! This crate is the Rust reproduction of the paper's primary contribution
//! (Section IV): instead of solving circuit differential equations for every
//! operation, OPTIMA
//!
//! 1. runs thorough multi-corner circuit simulations once
//!    (using [`optima_circuit`] as the golden reference),
//! 2. fits parameterised polynomial *discharge models* (Eqs. 3–6) and
//!    *energy models* (Eqs. 7–8) to the resulting data with least squares
//!    ([`calibration`]),
//! 3. evaluates those models inside a fast event-based, discrete-time
//!    simulation framework ([`simulator`]), and
//! 4. quantifies the model accuracy (RMS error, Fig. 6) and the speed-up over
//!    circuit simulation ([`evaluation`]).
//!
//! # Quick start
//!
//! ```rust,no_run
//! # fn main() -> Result<(), optima_core::ModelError> {
//! use optima_circuit::prelude::*;
//! use optima_core::calibration::{CalibrationConfig, Calibrator};
//! use optima_math::units::{Celsius, Seconds, Volts};
//!
//! // 1. Calibrate the models against the golden-reference simulator.
//! let technology = Technology::tsmc65_like();
//! let calibrator = Calibrator::new(technology.clone(), CalibrationConfig::default());
//! let calibration = calibrator.run()?;
//!
//! // 2. Evaluate a discharge without solving any differential equation.
//! let models = calibration.models();
//! let v_bl = models.bitline_voltage(
//!     Seconds(1.0e-9), Volts(0.8), Volts(1.0), Celsius(25.0),
//! )?;
//! println!("V_BL after 1 ns at V_WL = 0.8 V: {v_bl}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod calibration;
pub mod error;
pub mod evaluation;
pub mod model;
pub mod simulator;
pub mod snapshot;
pub mod sweep;

pub use backend::DischargeBackend;
pub use error::ModelError;
pub use model::suite::ModelSuite;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::backend::DischargeBackend;
    pub use crate::calibration::{
        CalibrationConfig, CalibrationOutcome, CalibrationReport, Calibrator,
    };
    pub use crate::error::ModelError;
    pub use crate::evaluation::{ModelEvaluator, RmsErrorReport, SpeedupReport};
    pub use crate::model::discharge::DischargeModel;
    pub use crate::model::energy::{DischargeEnergyModel, WriteEnergyModel};
    pub use crate::model::mismatch::MismatchSigmaModel;
    pub use crate::model::suite::ModelSuite;
    pub use crate::simulator::{Event, EventKind, EventSimulator, SimulationTrace};
    pub use crate::sweep::{par_map, par_map_sweep, stream_seed, SweepError};
    pub use optima_math::units::{Celsius, FemtoJoules, Joules, Seconds, Volts};
}
