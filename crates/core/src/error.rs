//! Error type of the OPTIMA modeling framework.

use optima_circuit::CircuitError;
use optima_math::MathError;
use std::fmt;

/// Error returned by model calibration, evaluation and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A model was evaluated outside the domain it was calibrated for.
    OutOfCalibrationRange {
        /// The offending quantity.
        quantity: String,
        /// The requested value.
        value: f64,
        /// Lower bound of the calibrated range.
        lo: f64,
        /// Upper bound of the calibrated range.
        hi: f64,
    },
    /// The calibration data set was too small or degenerate for a fit.
    CalibrationFailed {
        /// Which model could not be fitted.
        model: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A model was used before it was calibrated.
    NotCalibrated {
        /// Which model was missing.
        model: String,
    },
    /// The event simulator was given an inconsistent schedule.
    InvalidSchedule {
        /// Human-readable description.
        context: String,
    },
    /// One item of a parallel sweep failed (calibration grid point, held-out
    /// evaluation point, Monte-Carlo sample, …).  The sweep is error-strict:
    /// no partial result is returned and the lowest failing index is named.
    SweepFailed {
        /// Zero-based index of the failing item in the swept grid.
        index: usize,
        /// Human-readable description of the failing item.
        item: String,
        /// The underlying error.
        source: Box<ModelError>,
    },
    /// A calibration snapshot file could not be read or written.
    SnapshotIo {
        /// Path of the snapshot file.
        path: String,
        /// Operating-system error description.
        reason: String,
    },
    /// A calibration snapshot file is syntactically invalid (truncated,
    /// corrupted, or not a snapshot at all).
    SnapshotCorrupt {
        /// Path of the snapshot file.
        path: String,
        /// One-based line number of the first offending line (0 when the
        /// file ended prematurely).
        line: usize,
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// A calibration snapshot was written by an incompatible schema version.
    SnapshotSchemaMismatch {
        /// Path of the snapshot file.
        path: String,
        /// Schema tag found in the file.
        found: String,
        /// Schema tag this build understands.
        expected: String,
    },
    /// A calibration snapshot was fitted for a different technology or
    /// calibration configuration than the one requested.
    SnapshotFingerprintMismatch {
        /// Path of the snapshot file.
        path: String,
        /// Which fingerprint mismatched (`"technology"` or `"calibration config"`).
        what: &'static str,
        /// Fingerprint recorded in the file.
        found: String,
        /// Fingerprint of the requested technology/configuration.
        expected: String,
    },
    /// Error bubbled up from the golden-reference circuit simulator.
    Circuit(CircuitError),
    /// Error bubbled up from the numeric routines.
    Numeric(MathError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::OutOfCalibrationRange {
                quantity,
                value,
                lo,
                hi,
            } => write!(
                f,
                "{quantity} = {value} outside calibrated range [{lo}, {hi}]"
            ),
            ModelError::CalibrationFailed { model, reason } => {
                write!(f, "calibration of {model} failed: {reason}")
            }
            ModelError::NotCalibrated { model } => {
                write!(f, "model {model} has not been calibrated")
            }
            ModelError::InvalidSchedule { context } => {
                write!(f, "invalid event schedule: {context}")
            }
            ModelError::SweepFailed {
                index,
                item,
                source,
            } => {
                write!(f, "sweep item {index} ({item}) failed: {source}")
            }
            ModelError::SnapshotIo { path, reason } => {
                write!(f, "calibration snapshot {path}: {reason}")
            }
            ModelError::SnapshotCorrupt { path, line, reason } => {
                write!(
                    f,
                    "calibration snapshot {path} is corrupt (line {line}): {reason}"
                )
            }
            ModelError::SnapshotSchemaMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "calibration snapshot {path} has schema '{found}', this build expects '{expected}'"
            ),
            ModelError::SnapshotFingerprintMismatch {
                path,
                what,
                found,
                expected,
            } => write!(
                f,
                "calibration snapshot {path} was fitted for a different {what} \
                 (fingerprint {found}, requested {expected})"
            ),
            ModelError::Circuit(err) => write!(f, "circuit simulation error: {err}"),
            ModelError::Numeric(err) => write!(f, "numeric error: {err}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Circuit(err) => Some(err),
            ModelError::Numeric(err) => Some(err),
            ModelError::SweepFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl ModelError {
    /// Wraps a [`crate::sweep::SweepError`] with a human-readable description
    /// of the failing sweep item.
    pub fn from_sweep(err: crate::sweep::SweepError<ModelError>, item: impl Into<String>) -> Self {
        ModelError::SweepFailed {
            index: err.index,
            item: item.into(),
            source: Box::new(err.source),
        }
    }
}

impl From<CircuitError> for ModelError {
    fn from(err: CircuitError) -> Self {
        ModelError::Circuit(err)
    }
}

impl From<MathError> for ModelError {
    fn from(err: MathError) -> Self {
        ModelError::Numeric(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let err = ModelError::OutOfCalibrationRange {
            quantity: "V_WL".to_string(),
            value: 1.4,
            lo: 0.3,
            hi: 1.0,
        };
        assert!(err.to_string().contains("V_WL"));
        assert!(err.to_string().contains("1.4"));
        let err = ModelError::NotCalibrated {
            model: "discharge".to_string(),
        };
        assert!(err.to_string().contains("discharge"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        use std::error::Error;
        let err: ModelError = MathError::SingularMatrix.into();
        assert!(err.source().is_some());
        let err: ModelError = CircuitError::InvalidOperatingPoint {
            context: "x".to_string(),
        }
        .into();
        assert!(matches!(err, ModelError::Circuit(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
