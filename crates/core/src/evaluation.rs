//! Model evaluation: held-out RMS errors (Fig. 6) and speed-up measurement.
//!
//! The paper validates OPTIMA in two ways:
//!
//! * **Accuracy** — RMS error of each model against circuit simulation on a
//!   grid that was *not* used for fitting (Section IV-C reports 0.76 mV,
//!   0.88 mV, 0.76 mV, 0.59 mV, 0.15 fJ and 0.74 fJ for the six models).
//! * **Speed** — wall-clock speed-up of evaluating the fitted models instead
//!   of running the circuit simulator (Section V reports ~101× for iterating
//!   over the input space and 28.1× for mismatch Monte Carlo).
//!
//! Both measurements run through the [`DischargeBackend`] interface: the
//! golden [`TransientSimulator`] and the fitted [`ModelSuite`] answer the
//! identical waveform/energy queries, so "accuracy" is always the residual
//! between two backends and "speed-up" the runtime ratio between them.  The
//! only exceptions are the Eq. 6 σ-model checks (mismatch sampling has no
//! common shape across the backends) and the Eq. 3 basic-model residual,
//! which deliberately measures the *uncorrected* sub-model.

use crate::backend::DischargeBackend;
use crate::error::ModelError;
use crate::model::suite::ModelSuite;
use crate::sweep::{par_map_sweep, stream_seed};
use optima_circuit::montecarlo::MismatchModel;
use optima_circuit::pvt::{linspace, PvtConditions};
use optima_circuit::technology::Technology;
use optima_circuit::transient::{DischargeStimulus, TransientSimulator};
use optima_math::stats;
use optima_math::units::{Celsius, Seconds, Volts};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Held-out RMS errors of the six OPTIMA models (the Fig. 6 numbers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RmsErrorReport {
    /// Basic discharge model (Eq. 3), millivolts.
    pub basic_discharge_mv: f64,
    /// Supply-corrected model (Eq. 4), millivolts.
    pub supply_mv: f64,
    /// Temperature-corrected model (Eq. 5), millivolts.
    pub temperature_mv: f64,
    /// Mismatch σ model (Eq. 6), millivolts.
    pub mismatch_sigma_mv: f64,
    /// Write-energy model (Eq. 7), femtojoules.
    pub write_energy_fj: f64,
    /// Discharge-energy model (Eq. 8), femtojoules.
    pub discharge_energy_fj: f64,
}

impl RmsErrorReport {
    /// The largest voltage-model error of the report (mV), the headline
    /// number quoted in the paper's abstract (0.88 mV there).
    pub fn worst_voltage_error_mv(&self) -> f64 {
        self.basic_discharge_mv
            .max(self.supply_mv)
            .max(self.temperature_mv)
            .max(self.mismatch_sigma_mv)
    }
}

/// Result of a speed-up measurement.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Wall-clock seconds spent in the golden-reference circuit simulator.
    pub circuit_seconds: f64,
    /// Wall-clock seconds spent evaluating the OPTIMA models.
    pub model_seconds: f64,
    /// Number of operating points evaluated by both paths.
    pub evaluations: usize,
}

impl SpeedupReport {
    /// Speed-up factor (circuit time / model time).
    pub fn speedup(&self) -> f64 {
        if self.model_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.circuit_seconds / self.model_seconds
    }
}

/// Evaluates a fitted [`ModelSuite`] against the golden-reference simulator,
/// with both sides queried through the [`DischargeBackend`] interface.
#[derive(Debug, Clone)]
pub struct ModelEvaluator {
    technology: Technology,
    golden: TransientSimulator,
    models: ModelSuite,
    cells_on_bitline: usize,
    reference_time_steps: usize,
    threads: usize,
}

impl ModelEvaluator {
    /// Creates an evaluator for the given technology and fitted models.
    pub fn new(technology: Technology, models: ModelSuite) -> Self {
        ModelEvaluator {
            golden: TransientSimulator::new(technology.clone()),
            technology,
            models,
            cells_on_bitline: 16,
            reference_time_steps: 400,
            threads: 0,
        }
    }

    /// The fitted models being evaluated.
    pub fn models(&self) -> &ModelSuite {
        &self.models
    }

    /// The golden-reference backend the models are evaluated against.
    pub fn reference_backend(&self) -> &dyn DischargeBackend {
        &self.golden
    }

    /// The fitted backend under evaluation.
    pub fn fitted_backend(&self) -> &dyn DischargeBackend {
        &self.models
    }

    /// Overrides the reference-simulation fidelity (builder style), used by
    /// tests to keep runtimes short.
    pub fn with_reference_time_steps(mut self, steps: usize) -> Self {
        self.reference_time_steps = steps.max(10);
        self
    }

    /// Sets the sweep worker-thread count (builder style, `0` = automatic).
    /// All reported numbers except wall-clock timings are bit-identical for
    /// any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn stimulus(&self, v_wl: f64, duration: Seconds) -> DischargeStimulus {
        DischargeStimulus {
            word_line_voltage: Volts(v_wl),
            stored_bit: true,
            duration,
            cells_on_bitline: self.cells_on_bitline,
            time_steps: self.reference_time_steps,
        }
    }

    /// Computes held-out RMS errors on grids offset from the typical
    /// calibration grids (the Fig. 6 evaluation).
    ///
    /// `grid_points` controls the density of the held-out grid; 6–10 is
    /// enough for a stable estimate.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation and interpolation errors.
    pub fn rms_errors(
        &self,
        grid_points: usize,
        mc_samples: usize,
    ) -> Result<RmsErrorReport, ModelError> {
        let grid_points = grid_points.max(3);
        let simulator = &self.golden;
        let fitted = &self.models;
        let nominal = PvtConditions::nominal(&self.technology);
        let duration = Seconds(2e-9);
        // Held-out grid: offset from the default calibration grid.
        let wordlines = linspace(0.47 + 0.013, 0.97, grid_points);
        let times: Vec<f64> = linspace(0.25e-9, 1.95e-9, grid_points);
        let sample_times: Vec<Seconds> = times.iter().map(|&t| Seconds(t)).collect();

        // Eq. 3 (nominal conditions).  Each held-out grid is evaluated with
        // the error-strict parallel sweep engine: one item per reference
        // transient, residual rows reassembled in grid order so the reported
        // RMS numbers are bit-identical at any thread count.  The reference
        // comes through the backend interface; the prediction deliberately
        // queries the *uncorrected* Eq. 3 sub-model below it.
        let residuals_basic: Vec<f64> = par_map_sweep(&wordlines, self.threads, |_, &v_wl| {
            let reference = simulator.bitline_voltages(
                &self.stimulus(v_wl, duration),
                &nominal,
                &sample_times,
            )?;
            let row: Vec<f64> = sample_times
                .iter()
                .zip(&reference)
                .map(|(&t, &r)| {
                    r - self
                        .models
                        .discharge_model()
                        .bitline_voltage_unchecked(t, Volts(v_wl))
                })
                .collect();
            Ok::<_, ModelError>(row)
        })
        .map_err(|err| {
            let item = format!("held-out discharge grid V_WL = {} V", wordlines[err.index]);
            ModelError::from_sweep(err, item)
        })?
        .into_iter()
        .flatten()
        .collect();

        // Eq. 4 (supply sweep): both sides answer the same backend query.
        let supply_grid: Vec<(f64, f64)> = linspace(0.92, 1.08, 3)
            .iter()
            .flat_map(|&vdd| wordlines.iter().map(move |&v_wl| (vdd, v_wl)))
            .collect();
        let residuals_supply: Vec<f64> =
            par_map_sweep(&supply_grid, self.threads, |_, &(vdd, v_wl)| {
                let pvt = nominal.with_vdd(Volts(vdd));
                let stimulus = self.stimulus(v_wl, duration);
                let reference = simulator.bitline_voltages(&stimulus, &pvt, &sample_times)?;
                let predicted = fitted.bitline_voltages(&stimulus, &pvt, &sample_times)?;
                let row: Vec<f64> = reference
                    .iter()
                    .zip(&predicted)
                    .map(|(r, p)| r - p)
                    .collect();
                Ok::<_, ModelError>(row)
            })
            .map_err(|err| {
                let (vdd, v_wl) = supply_grid[err.index];
                ModelError::from_sweep(
                    err,
                    format!("held-out supply grid V_DD = {vdd} V, V_WL = {v_wl} V"),
                )
            })?
            .into_iter()
            .flatten()
            .collect();

        // Eq. 5 (temperature sweep).
        let temperature_grid: Vec<(f64, f64)> = [-20.0, 50.0, 100.0]
            .iter()
            .flat_map(|&temp| wordlines.iter().map(move |&v_wl| (temp, v_wl)))
            .collect();
        let residuals_temperature: Vec<f64> =
            par_map_sweep(&temperature_grid, self.threads, |_, &(temp, v_wl)| {
                let pvt = nominal.with_temperature(Celsius(temp));
                let stimulus = self.stimulus(v_wl, duration);
                let reference = simulator.bitline_voltages(&stimulus, &pvt, &sample_times)?;
                let predicted = fitted.bitline_voltages(&stimulus, &pvt, &sample_times)?;
                let row: Vec<f64> = reference
                    .iter()
                    .zip(&predicted)
                    .map(|(r, p)| r - p)
                    .collect();
                Ok::<_, ModelError>(row)
            })
            .map_err(|err| {
                let (temp, v_wl) = temperature_grid[err.index];
                ModelError::from_sweep(
                    err,
                    format!("held-out temperature grid T = {temp} degC, V_WL = {v_wl} V"),
                )
            })?
            .into_iter()
            .flatten()
            .collect();

        // Eq. 6 (mismatch σ).  Every word-line grid point shares the same
        // fixed-seed sample set (as the serial code did), drawn once up
        // front, so the Monte-Carlo reference is independent of the thread
        // count by construction.
        let mismatch_model = MismatchModel::from_technology(&self.technology);
        let mc = mc_samples.max(10);
        let mismatch_samples = mismatch_model.sample_n(mc, 0xe7a1);
        let residuals_sigma: Vec<f64> = par_map_sweep(&wordlines, self.threads, |_, &v_wl| {
            let mut per_time: Vec<Vec<f64>> = vec![Vec::new(); times.len()];
            for sample in &mismatch_samples {
                let waveform = simulator.discharge_waveform(
                    &self.stimulus(v_wl, duration),
                    &nominal,
                    sample,
                )?;
                for (i, &t) in times.iter().enumerate() {
                    per_time[i].push(waveform.sample_at(Seconds(t))?.0);
                }
            }
            let row: Vec<f64> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let reference_sigma = stats::std_dev(&per_time[i]);
                    let predicted_sigma = self.models.mismatch_sigma(Seconds(t), Volts(v_wl)).0;
                    reference_sigma - predicted_sigma
                })
                .collect();
            Ok::<_, ModelError>(row)
        })
        .map_err(|err| {
            let item = format!("held-out mismatch grid V_WL = {} V", wordlines[err.index]);
            ModelError::from_sweep(err, item)
        })?
        .into_iter()
        .flatten()
        .collect();

        // Eq. 7 (write energy): both backends answer the same energy query.
        let write_grid: Vec<(f64, f64)> = linspace(0.92, 1.08, 4)
            .iter()
            .flat_map(|&vdd| {
                [-20.0, 10.0, 60.0, 110.0]
                    .iter()
                    .map(move |&temp| (vdd, temp))
            })
            .collect();
        let residuals_write: Vec<f64> =
            par_map_sweep(&write_grid, self.threads, |_, &(vdd, temp)| {
                let pvt = nominal.with_vdd(Volts(vdd)).with_temperature(Celsius(temp));
                let reference = DischargeBackend::write_energy(simulator, &pvt)?.0;
                let predicted = DischargeBackend::write_energy(fitted, &pvt)?.0;
                Ok::<_, ModelError>(reference - predicted)
            })
            .map_err(|err| {
                let (vdd, temp) = write_grid[err.index];
                ModelError::from_sweep(
                    err,
                    format!("held-out write-energy grid V_DD = {vdd} V, T = {temp} degC"),
                )
            })?;

        // Eq. 8 (discharge energy): the golden backend supplies the achieved
        // delta, then both backends price the same discharge.
        let discharge_grid: Vec<(f64, f64)> = linspace(0.92, 1.08, 3)
            .iter()
            .flat_map(|&vdd| wordlines.iter().map(move |&v_wl| (vdd, v_wl)))
            .collect();
        let residuals_discharge_energy: Vec<f64> =
            par_map_sweep(&discharge_grid, self.threads, |_, &(vdd, v_wl)| {
                let pvt = nominal.with_vdd(Volts(vdd));
                let stimulus = self.stimulus(v_wl, duration);
                let delta = DischargeBackend::discharge_delta(simulator, &stimulus, &pvt)?;
                let reference =
                    DischargeBackend::discharge_energy(simulator, &stimulus, &pvt, delta)?.0;
                let predicted =
                    DischargeBackend::discharge_energy(fitted, &stimulus, &pvt, delta)?.0;
                Ok::<_, ModelError>(reference - predicted)
            })
            .map_err(|err| {
                let (vdd, v_wl) = discharge_grid[err.index];
                ModelError::from_sweep(
                    err,
                    format!("held-out discharge-energy grid V_DD = {vdd} V, V_WL = {v_wl} V"),
                )
            })?;

        Ok(RmsErrorReport {
            basic_discharge_mv: stats::rms(&residuals_basic) * 1e3,
            supply_mv: stats::rms(&residuals_supply) * 1e3,
            temperature_mv: stats::rms(&residuals_temperature) * 1e3,
            mismatch_sigma_mv: stats::rms(&residuals_sigma) * 1e3,
            write_energy_fj: stats::rms(&residuals_write),
            discharge_energy_fj: stats::rms(&residuals_discharge_energy),
        })
    }

    /// Measures the wall-clock speed-up of the fitted models over circuit
    /// simulation when iterating over an input space of `wordline_points`
    /// word-line voltages × `time_points` sampling instants.
    ///
    /// Both sides answer the identical [`DischargeBackend`] waveform query,
    /// so the reported factor is a like-for-like interface comparison.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation errors.
    pub fn measure_speedup(
        &self,
        wordline_points: usize,
        time_points: usize,
    ) -> Result<SpeedupReport, ModelError> {
        let simulator = &self.golden;
        let nominal = PvtConditions::nominal(&self.technology);
        let duration = Seconds(2e-9);
        let wordlines = linspace(0.5, 1.0, wordline_points.max(2));
        let times = linspace(0.2e-9, 1.9e-9, time_points.max(2));
        let sample_times: Vec<Seconds> = times.iter().map(|&t| Seconds(t)).collect();

        // Circuit path: one transient per word-line voltage, sampled at each
        // time, fanned out over the sweep engine (the realistic wall-clock
        // cost of the golden reference on this machine).
        let circuit_start = Instant::now();
        let circuit_rows = par_map_sweep(&wordlines, self.threads, |_, &v_wl| {
            simulator.bitline_voltages(&self.stimulus(v_wl, duration), &nominal, &sample_times)
        })
        .map_err(|err| {
            let item = format!("speed-up circuit sweep V_WL = {} V", wordlines[err.index]);
            ModelError::from_sweep(err, item)
        })?;
        let circuit_seconds = circuit_start.elapsed().as_secs_f64();
        let circuit_checksum: f64 = circuit_rows.into_iter().flatten().sum();

        // Model path: batched polynomial evaluation through the same backend
        // query.  Deliberately serial — one whole-grid fill costs
        // microseconds, so worker-thread spawn overhead would dominate and
        // the measurement would reflect the harness instead of the model.
        let mut row = vec![0.0; sample_times.len()];
        let model_start = Instant::now();
        let mut model_checksum = 0.0;
        for &v_wl in &wordlines {
            self.models.fill_bitline_voltages(
                &self.stimulus(v_wl, duration),
                &nominal,
                &sample_times,
                &mut row,
            )?;
            model_checksum += row.iter().sum::<f64>();
        }
        let model_seconds = model_start.elapsed().as_secs_f64();

        // The checksums keep the optimiser from eliminating either loop and
        // double as a sanity check that both paths computed similar values.
        debug_assert!((circuit_checksum - model_checksum).abs() / circuit_checksum < 0.1);

        Ok(SpeedupReport {
            circuit_seconds,
            model_seconds,
            evaluations: wordlines.len() * times.len(),
        })
    }

    /// Measures the speed-up for mismatch Monte Carlo analysis: `mc_samples`
    /// mismatch instances of the same operating point, evaluated by circuit
    /// simulation vs. by sampling the Eq. 6 σ model.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation errors.
    pub fn measure_monte_carlo_speedup(
        &self,
        mc_samples: usize,
    ) -> Result<SpeedupReport, ModelError> {
        use rand::SeedableRng;
        let simulator = &self.golden;
        let nominal = PvtConditions::nominal(&self.technology);
        let duration = Seconds(2e-9);
        let v_wl = 0.8;
        let t_sample = Seconds(1.0e-9);
        let mismatch_model = MismatchModel::from_technology(&self.technology);
        let samples = mismatch_model.sample_n(mc_samples.max(10), 0x5eed);

        // Circuit path: one transient per mismatch instance, fanned out over
        // the sweep engine with index-ordered reassembly.
        let circuit_start = Instant::now();
        let circuit_values = par_map_sweep(&samples, self.threads, |_, sample| {
            let waveform =
                simulator.discharge_waveform(&self.stimulus(v_wl, duration), &nominal, sample)?;
            Ok::<_, ModelError>(waveform.sample_at(t_sample)?.0)
        })
        .map_err(|err| {
            let item = format!("Monte-Carlo circuit sweep sample {}", err.index);
            ModelError::from_sweep(err, item)
        })?;
        let circuit_seconds = circuit_start.elapsed().as_secs_f64();

        // Model path: σ-model sampling, one split-seed RNG stream per sample
        // so the drawn sequence is independent of iteration strategy.  Kept
        // serial because a sample costs nanoseconds (see measure_speedup);
        // the streams are seeded outside the timed window so RNG setup does
        // not inflate the measured model time.
        let mut rngs: Vec<rand_chacha::ChaCha8Rng> = (0..samples.len())
            .map(|index| rand_chacha::ChaCha8Rng::seed_from_u64(stream_seed(0x5eed, index as u64)))
            .collect();
        let model_start = Instant::now();
        let mut model_values = Vec::with_capacity(samples.len());
        for rng in &mut rngs {
            let nominal_v = self.models.bitline_voltage_unchecked(
                t_sample,
                Volts(v_wl),
                nominal.vdd,
                Celsius(self.technology.temperature_nominal.0),
            );
            let deviation =
                self.models
                    .mismatch_model()
                    .sample_deviation(rng, t_sample, Volts(v_wl));
            model_values.push(nominal_v + deviation.0);
        }
        let model_seconds = model_start.elapsed().as_secs_f64();

        debug_assert!(
            (stats::mean(&circuit_values) - stats::mean(&model_values)).abs() < 0.05,
            "monte carlo means diverge"
        );

        Ok(SpeedupReport {
            circuit_seconds,
            model_seconds,
            evaluations: samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{CalibrationConfig, Calibrator};

    fn evaluator() -> ModelEvaluator {
        let tech = Technology::tsmc65_like();
        let models = Calibrator::new(tech.clone(), CalibrationConfig::fast())
            .run()
            .expect("calibration succeeds")
            .into_models();
        ModelEvaluator::new(tech, models).with_reference_time_steps(200)
    }

    #[test]
    fn rms_errors_are_below_an_adc_lsb() {
        let report = evaluator().rms_errors(4, 20).unwrap();
        // For an 8-bit ADC over ~0.5 V the LSB is ~2 mV; for the 4-bit result
        // range it is tens of mV.  The models must be well below that.
        assert!(report.basic_discharge_mv < 10.0, "{report:?}");
        assert!(report.supply_mv < 40.0, "{report:?}");
        assert!(report.temperature_mv < 25.0, "{report:?}");
        assert!(report.mismatch_sigma_mv < 5.0, "{report:?}");
        assert!(report.write_energy_fj < 1.0, "{report:?}");
        assert!(report.discharge_energy_fj < 2.0, "{report:?}");
        assert!(report.worst_voltage_error_mv() >= report.basic_discharge_mv);
    }

    #[test]
    fn model_evaluation_is_much_faster_than_circuit_simulation() {
        let report = evaluator().measure_speedup(6, 6).unwrap();
        assert_eq!(report.evaluations, 36);
        assert!(
            report.speedup() > 10.0,
            "expected a large speed-up, got {}",
            report.speedup()
        );
    }

    #[test]
    fn monte_carlo_speedup_is_positive() {
        let report = evaluator().measure_monte_carlo_speedup(30).unwrap();
        assert!(report.speedup() > 5.0, "got {}", report.speedup());
        assert_eq!(report.evaluations, 30);
    }

    #[test]
    fn rms_errors_are_bit_identical_at_any_thread_count() {
        let evaluator = evaluator();
        let serial = evaluator.clone().with_threads(1).rms_errors(4, 20).unwrap();
        let parallel = evaluator.with_threads(8).rms_errors(4, 20).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn speedup_report_handles_zero_model_time() {
        let report = SpeedupReport {
            circuit_seconds: 1.0,
            model_seconds: 0.0,
            evaluations: 1,
        };
        assert!(report.speedup().is_infinite());
    }
}
