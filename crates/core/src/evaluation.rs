//! Model evaluation: held-out RMS errors (Fig. 6) and speed-up measurement.
//!
//! The paper validates OPTIMA in two ways:
//!
//! * **Accuracy** — RMS error of each model against circuit simulation on a
//!   grid that was *not* used for fitting (Section IV-C reports 0.76 mV,
//!   0.88 mV, 0.76 mV, 0.59 mV, 0.15 fJ and 0.74 fJ for the six models).
//! * **Speed** — wall-clock speed-up of evaluating the fitted models instead
//!   of running the circuit simulator (Section V reports ~101× for iterating
//!   over the input space and 28.1× for mismatch Monte Carlo).

use crate::error::ModelError;
use crate::model::suite::ModelSuite;
use optima_circuit::energy as circuit_energy;
use optima_circuit::montecarlo::{MismatchModel, MismatchSample};
use optima_circuit::pvt::{linspace, PvtConditions};
use optima_circuit::technology::Technology;
use optima_circuit::transient::{DischargeStimulus, TransientSimulator};
use optima_math::stats;
use optima_math::units::{Celsius, Seconds, Volts};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Held-out RMS errors of the six OPTIMA models (the Fig. 6 numbers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RmsErrorReport {
    /// Basic discharge model (Eq. 3), millivolts.
    pub basic_discharge_mv: f64,
    /// Supply-corrected model (Eq. 4), millivolts.
    pub supply_mv: f64,
    /// Temperature-corrected model (Eq. 5), millivolts.
    pub temperature_mv: f64,
    /// Mismatch σ model (Eq. 6), millivolts.
    pub mismatch_sigma_mv: f64,
    /// Write-energy model (Eq. 7), femtojoules.
    pub write_energy_fj: f64,
    /// Discharge-energy model (Eq. 8), femtojoules.
    pub discharge_energy_fj: f64,
}

impl RmsErrorReport {
    /// The largest voltage-model error of the report (mV), the headline
    /// number quoted in the paper's abstract (0.88 mV there).
    pub fn worst_voltage_error_mv(&self) -> f64 {
        self.basic_discharge_mv
            .max(self.supply_mv)
            .max(self.temperature_mv)
            .max(self.mismatch_sigma_mv)
    }
}

/// Result of a speed-up measurement.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Wall-clock seconds spent in the golden-reference circuit simulator.
    pub circuit_seconds: f64,
    /// Wall-clock seconds spent evaluating the OPTIMA models.
    pub model_seconds: f64,
    /// Number of operating points evaluated by both paths.
    pub evaluations: usize,
}

impl SpeedupReport {
    /// Speed-up factor (circuit time / model time).
    pub fn speedup(&self) -> f64 {
        if self.model_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.circuit_seconds / self.model_seconds
    }
}

/// Evaluates a fitted [`ModelSuite`] against the golden-reference simulator.
#[derive(Debug, Clone)]
pub struct ModelEvaluator {
    technology: Technology,
    models: ModelSuite,
    cells_on_bitline: usize,
    reference_time_steps: usize,
}

impl ModelEvaluator {
    /// Creates an evaluator for the given technology and fitted models.
    pub fn new(technology: Technology, models: ModelSuite) -> Self {
        ModelEvaluator {
            technology,
            models,
            cells_on_bitline: 16,
            reference_time_steps: 400,
        }
    }

    /// The fitted models being evaluated.
    pub fn models(&self) -> &ModelSuite {
        &self.models
    }

    /// Overrides the reference-simulation fidelity (builder style), used by
    /// tests to keep runtimes short.
    pub fn with_reference_time_steps(mut self, steps: usize) -> Self {
        self.reference_time_steps = steps.max(10);
        self
    }

    fn stimulus(&self, v_wl: f64, duration: Seconds) -> DischargeStimulus {
        DischargeStimulus {
            word_line_voltage: Volts(v_wl),
            stored_bit: true,
            duration,
            cells_on_bitline: self.cells_on_bitline,
            time_steps: self.reference_time_steps,
        }
    }

    /// Computes held-out RMS errors on grids offset from the typical
    /// calibration grids (the Fig. 6 evaluation).
    ///
    /// `grid_points` controls the density of the held-out grid; 6–10 is
    /// enough for a stable estimate.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation and interpolation errors.
    pub fn rms_errors(
        &self,
        grid_points: usize,
        mc_samples: usize,
    ) -> Result<RmsErrorReport, ModelError> {
        let grid_points = grid_points.max(3);
        let simulator = TransientSimulator::new(self.technology.clone());
        let nominal = PvtConditions::nominal(&self.technology);
        let duration = Seconds(2e-9);
        // Held-out grid: offset from the default calibration grid.
        let wordlines = linspace(0.47 + 0.013, 0.97, grid_points);
        let times: Vec<f64> = linspace(0.25e-9, 1.95e-9, grid_points);

        // Eq. 3 (nominal conditions).
        let mut residuals_basic = Vec::new();
        for &v_wl in &wordlines {
            let waveform = simulator.discharge_waveform(
                &self.stimulus(v_wl, duration),
                &nominal,
                &MismatchSample::none(),
            )?;
            for &t in &times {
                let reference = waveform.sample_at(Seconds(t))?.0;
                let predicted = self
                    .models
                    .discharge_model()
                    .bitline_voltage_unchecked(Seconds(t), Volts(v_wl));
                residuals_basic.push(reference - predicted);
            }
        }

        // Eq. 4 (supply sweep).
        let mut residuals_supply = Vec::new();
        for &vdd in &linspace(0.92, 1.08, 3) {
            let pvt = nominal.with_vdd(Volts(vdd));
            for &v_wl in &wordlines {
                let waveform = simulator.discharge_waveform(
                    &self.stimulus(v_wl, duration),
                    &pvt,
                    &MismatchSample::none(),
                )?;
                for &t in &times {
                    let reference = waveform.sample_at(Seconds(t))?.0;
                    let predicted = self.models.bitline_voltage_unchecked(
                        Seconds(t),
                        Volts(v_wl),
                        Volts(vdd),
                        Celsius(self.technology.temperature_nominal.0),
                    );
                    residuals_supply.push(reference - predicted);
                }
            }
        }

        // Eq. 5 (temperature sweep).
        let mut residuals_temperature = Vec::new();
        for &temp in &[-20.0, 50.0, 100.0] {
            let pvt = nominal.with_temperature(Celsius(temp));
            for &v_wl in &wordlines {
                let waveform = simulator.discharge_waveform(
                    &self.stimulus(v_wl, duration),
                    &pvt,
                    &MismatchSample::none(),
                )?;
                for &t in &times {
                    let reference = waveform.sample_at(Seconds(t))?.0;
                    let predicted = self.models.bitline_voltage_unchecked(
                        Seconds(t),
                        Volts(v_wl),
                        nominal.vdd,
                        Celsius(temp),
                    );
                    residuals_temperature.push(reference - predicted);
                }
            }
        }

        // Eq. 6 (mismatch σ).
        let mismatch_model = MismatchModel::from_technology(&self.technology);
        let mut residuals_sigma = Vec::new();
        let mc = mc_samples.max(10);
        for &v_wl in &wordlines {
            let samples = mismatch_model.sample_n(mc, 0xe7a1);
            let mut per_time: Vec<Vec<f64>> = vec![Vec::new(); times.len()];
            for sample in &samples {
                let waveform = simulator.discharge_waveform(
                    &self.stimulus(v_wl, duration),
                    &nominal,
                    sample,
                )?;
                for (i, &t) in times.iter().enumerate() {
                    per_time[i].push(waveform.sample_at(Seconds(t))?.0);
                }
            }
            for (i, &t) in times.iter().enumerate() {
                let reference_sigma = stats::std_dev(&per_time[i]);
                let predicted_sigma = self.models.mismatch_sigma(Seconds(t), Volts(v_wl)).0;
                residuals_sigma.push(reference_sigma - predicted_sigma);
            }
        }

        // Eq. 7 (write energy).
        let mut residuals_write = Vec::new();
        for &vdd in &linspace(0.92, 1.08, 4) {
            for &temp in &[-20.0, 10.0, 60.0, 110.0] {
                let pvt = nominal.with_vdd(Volts(vdd)).with_temperature(Celsius(temp));
                let reference = circuit_energy::write_energy(&self.technology, &pvt)
                    .to_femtojoules()
                    .0;
                let predicted = self.models.write_energy(Volts(vdd), Celsius(temp)).0;
                residuals_write.push(reference - predicted);
            }
        }

        // Eq. 8 (discharge energy).
        let mut residuals_discharge_energy = Vec::new();
        for &vdd in &linspace(0.92, 1.08, 3) {
            let pvt = nominal.with_vdd(Volts(vdd));
            for &v_wl in &wordlines {
                let delta = simulator.discharge_delta(
                    &self.stimulus(v_wl, duration),
                    &pvt,
                    &MismatchSample::none(),
                )?;
                let reference = circuit_energy::discharge_energy(
                    &self.technology,
                    &pvt,
                    self.cells_on_bitline,
                    delta,
                )
                .to_femtojoules()
                .0;
                let predicted = self
                    .models
                    .discharge_energy(
                        delta,
                        Volts(vdd),
                        Celsius(self.technology.temperature_nominal.0),
                    )
                    .0;
                residuals_discharge_energy.push(reference - predicted);
            }
        }

        Ok(RmsErrorReport {
            basic_discharge_mv: stats::rms(&residuals_basic) * 1e3,
            supply_mv: stats::rms(&residuals_supply) * 1e3,
            temperature_mv: stats::rms(&residuals_temperature) * 1e3,
            mismatch_sigma_mv: stats::rms(&residuals_sigma) * 1e3,
            write_energy_fj: stats::rms(&residuals_write),
            discharge_energy_fj: stats::rms(&residuals_discharge_energy),
        })
    }

    /// Measures the wall-clock speed-up of the fitted models over circuit
    /// simulation when iterating over an input space of `wordline_points`
    /// word-line voltages × `time_points` sampling instants.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation errors.
    pub fn measure_speedup(
        &self,
        wordline_points: usize,
        time_points: usize,
    ) -> Result<SpeedupReport, ModelError> {
        let simulator = TransientSimulator::new(self.technology.clone());
        let nominal = PvtConditions::nominal(&self.technology);
        let duration = Seconds(2e-9);
        let wordlines = linspace(0.5, 1.0, wordline_points.max(2));
        let times = linspace(0.2e-9, 1.9e-9, time_points.max(2));

        // Circuit path: one transient per word-line voltage, sampled at each time.
        let circuit_start = Instant::now();
        let mut circuit_checksum = 0.0;
        for &v_wl in &wordlines {
            let waveform = simulator.discharge_waveform(
                &self.stimulus(v_wl, duration),
                &nominal,
                &MismatchSample::none(),
            )?;
            for &t in &times {
                circuit_checksum += waveform.sample_at(Seconds(t))?.0;
            }
        }
        let circuit_seconds = circuit_start.elapsed().as_secs_f64();

        // Model path: direct polynomial evaluation.
        let model_start = Instant::now();
        let mut model_checksum = 0.0;
        for &v_wl in &wordlines {
            for &t in &times {
                model_checksum += self.models.bitline_voltage_unchecked(
                    Seconds(t),
                    Volts(v_wl),
                    nominal.vdd,
                    Celsius(self.technology.temperature_nominal.0),
                );
            }
        }
        let model_seconds = model_start.elapsed().as_secs_f64();

        // The checksums keep the optimiser from eliminating either loop and
        // double as a sanity check that both paths computed similar values.
        debug_assert!((circuit_checksum - model_checksum).abs() / circuit_checksum < 0.1);

        Ok(SpeedupReport {
            circuit_seconds,
            model_seconds,
            evaluations: wordlines.len() * times.len(),
        })
    }

    /// Measures the speed-up for mismatch Monte Carlo analysis: `mc_samples`
    /// mismatch instances of the same operating point, evaluated by circuit
    /// simulation vs. by sampling the Eq. 6 σ model.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation errors.
    pub fn measure_monte_carlo_speedup(
        &self,
        mc_samples: usize,
    ) -> Result<SpeedupReport, ModelError> {
        use rand::SeedableRng;
        let simulator = TransientSimulator::new(self.technology.clone());
        let nominal = PvtConditions::nominal(&self.technology);
        let duration = Seconds(2e-9);
        let v_wl = 0.8;
        let t_sample = Seconds(1.0e-9);
        let mismatch_model = MismatchModel::from_technology(&self.technology);
        let samples = mismatch_model.sample_n(mc_samples.max(10), 0x5eed);

        let circuit_start = Instant::now();
        let mut circuit_values = Vec::with_capacity(samples.len());
        for sample in &samples {
            let waveform =
                simulator.discharge_waveform(&self.stimulus(v_wl, duration), &nominal, sample)?;
            circuit_values.push(waveform.sample_at(t_sample)?.0);
        }
        let circuit_seconds = circuit_start.elapsed().as_secs_f64();

        let model_start = Instant::now();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5eed);
        let mut model_values = Vec::with_capacity(samples.len());
        for _ in 0..samples.len() {
            let nominal_v = self.models.bitline_voltage_unchecked(
                t_sample,
                Volts(v_wl),
                nominal.vdd,
                Celsius(self.technology.temperature_nominal.0),
            );
            let deviation =
                self.models
                    .mismatch_model()
                    .sample_deviation(&mut rng, t_sample, Volts(v_wl));
            model_values.push(nominal_v + deviation.0);
        }
        let model_seconds = model_start.elapsed().as_secs_f64();

        debug_assert!(
            (stats::mean(&circuit_values) - stats::mean(&model_values)).abs() < 0.05,
            "monte carlo means diverge"
        );

        Ok(SpeedupReport {
            circuit_seconds,
            model_seconds,
            evaluations: samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{CalibrationConfig, Calibrator};

    fn evaluator() -> ModelEvaluator {
        let tech = Technology::tsmc65_like();
        let models = Calibrator::new(tech.clone(), CalibrationConfig::fast())
            .run()
            .expect("calibration succeeds")
            .into_models();
        ModelEvaluator::new(tech, models).with_reference_time_steps(200)
    }

    #[test]
    fn rms_errors_are_below_an_adc_lsb() {
        let report = evaluator().rms_errors(4, 20).unwrap();
        // For an 8-bit ADC over ~0.5 V the LSB is ~2 mV; for the 4-bit result
        // range it is tens of mV.  The models must be well below that.
        assert!(report.basic_discharge_mv < 10.0, "{report:?}");
        assert!(report.supply_mv < 40.0, "{report:?}");
        assert!(report.temperature_mv < 25.0, "{report:?}");
        assert!(report.mismatch_sigma_mv < 5.0, "{report:?}");
        assert!(report.write_energy_fj < 1.0, "{report:?}");
        assert!(report.discharge_energy_fj < 2.0, "{report:?}");
        assert!(report.worst_voltage_error_mv() >= report.basic_discharge_mv);
    }

    #[test]
    fn model_evaluation_is_much_faster_than_circuit_simulation() {
        let report = evaluator().measure_speedup(6, 6).unwrap();
        assert_eq!(report.evaluations, 36);
        assert!(
            report.speedup() > 10.0,
            "expected a large speed-up, got {}",
            report.speedup()
        );
    }

    #[test]
    fn monte_carlo_speedup_is_positive() {
        let report = evaluator().measure_monte_carlo_speedup(30).unwrap();
        assert!(report.speedup() > 5.0, "got {}", report.speedup());
        assert_eq!(report.evaluations, 30);
    }

    #[test]
    fn speedup_report_handles_zero_model_time() {
        let report = SpeedupReport {
            circuit_seconds: 1.0,
            model_seconds: 0.0,
            evaluations: 1,
        };
        assert!(report.speedup().is_infinite());
    }
}
