//! Sense amplifier and the conventional SRAM read path.
//!
//! Discharge-based computing reuses the normal read mechanism of the 6T cell
//! (Section II-A of the paper): both bit-lines are pre-charged, the word-line
//! is asserted, one bit-line discharges and a sense amplifier resolves the
//! differential signal once it exceeds its offset.  This module provides that
//! baseline read path — it is what an in-SRAM computing macro falls back to
//! when it is used as a plain memory.

use crate::error::CircuitError;
use crate::montecarlo::MismatchSample;
use crate::pvt::PvtConditions;
use crate::technology::Technology;
use crate::transient::{DischargeStimulus, TransientSimulator};
use optima_math::units::{Seconds, Volts};
use serde::{Deserialize, Serialize};

/// A latch-type differential sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseAmplifier {
    /// Input-referred offset voltage (positive values favour reading '1').
    pub offset: Volts,
    /// Minimum differential input required for a reliable decision.
    pub sensitivity: Volts,
}

impl SenseAmplifier {
    /// An ideal sense amplifier (no offset, 1 mV sensitivity).
    pub fn ideal() -> Self {
        SenseAmplifier {
            offset: Volts(0.0),
            sensitivity: Volts(1e-3),
        }
    }

    /// Creates a sense amplifier with the given offset and sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is not positive.
    pub fn new(offset: Volts, sensitivity: Volts) -> Self {
        assert!(sensitivity.0 > 0.0, "sensitivity must be positive");
        SenseAmplifier {
            offset,
            sensitivity,
        }
    }

    /// Resolves the differential input `V_BL − V_BLB`.
    ///
    /// Returns `Some(bit)` when the (offset-corrected) differential exceeds
    /// the sensitivity, `None` when the decision is still metastable.
    pub fn resolve(&self, bitline: Volts, bitline_bar: Volts) -> Option<bool> {
        let differential = bitline.0 - bitline_bar.0 + self.offset.0;
        if differential.abs() < self.sensitivity.0 {
            None
        } else {
            Some(differential > 0.0)
        }
    }
}

/// Outcome of a conventional read operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// The value resolved by the sense amplifier.
    pub value: bool,
    /// The differential bit-line swing at the moment of sensing.
    pub differential: Volts,
    /// The time at which the sense amplifier fired.
    pub sense_time: Seconds,
}

/// Performs a conventional SRAM read of a cell storing `stored_bit` and
/// reports when the sense amplifier can fire.
///
/// The word-line is driven to the full supply voltage; the read is simulated
/// with the same transient engine used for in-SRAM computing, so PVT and
/// mismatch affect the read exactly like they affect computation.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidOperatingPoint`] when the discharge never
/// exceeds the sense-amplifier sensitivity within `max_time`, or propagates
/// transient-simulation errors.
pub fn read_cell(
    technology: &Technology,
    pvt: &PvtConditions,
    mismatch: &MismatchSample,
    sense_amplifier: &SenseAmplifier,
    stored_bit: bool,
    max_time: Seconds,
) -> Result<ReadOutcome, CircuitError> {
    let simulator = TransientSimulator::new(technology.clone());
    // During a read the accessed cell pulls BLB low when it stores '1' and BL
    // low when it stores '0'; simulate the discharging line and keep the
    // complementary line at the pre-charge level.
    let stimulus = DischargeStimulus {
        word_line_voltage: Volts(pvt.vdd.0),
        stored_bit: true,
        duration: max_time,
        ..DischargeStimulus::default()
    };
    let waveform = simulator.discharge_waveform(&stimulus, pvt, mismatch)?;
    let static_line = pvt.vdd;

    // Find the earliest sample at which the SA can resolve the differential.
    for (index, &time) in waveform.times().iter().enumerate() {
        let discharging = Volts(waveform.values()[index]);
        let (bitline, bitline_bar) = if stored_bit {
            (static_line, discharging)
        } else {
            (discharging, static_line)
        };
        if let Some(value) = sense_amplifier.resolve(bitline, bitline_bar) {
            return Ok(ReadOutcome {
                value,
                differential: Volts((bitline.0 - bitline_bar.0).abs()),
                sense_time: Seconds(time),
            });
        }
    }
    Err(CircuitError::InvalidOperatingPoint {
        context: format!(
            "differential swing never exceeded the sense sensitivity of {} V within {} s",
            sense_amplifier.sensitivity.0, max_time.0
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sense_amplifier_resolves_clear_differentials() {
        let sa = SenseAmplifier::ideal();
        assert_eq!(sa.resolve(Volts(1.0), Volts(0.9)), Some(true));
        assert_eq!(sa.resolve(Volts(0.9), Volts(1.0)), Some(false));
        assert_eq!(sa.resolve(Volts(1.0), Volts(1.0)), None);
    }

    #[test]
    fn offset_biases_the_decision() {
        let sa = SenseAmplifier::new(Volts(0.02), Volts(1e-3));
        // A true differential of -10 mV is overridden by the +20 mV offset.
        assert_eq!(sa.resolve(Volts(0.99), Volts(1.0)), Some(true));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_sensitivity_panics() {
        let _ = SenseAmplifier::new(Volts(0.0), Volts(0.0));
    }

    #[test]
    fn read_returns_the_stored_value_for_both_polarities() {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        let sa = SenseAmplifier::new(Volts(0.0), Volts(0.05));
        for stored in [true, false] {
            let outcome = read_cell(
                &tech,
                &pvt,
                &MismatchSample::none(),
                &sa,
                stored,
                Seconds(2e-9),
            )
            .expect("read resolves");
            assert_eq!(outcome.value, stored);
            assert!(outcome.differential.0 >= 0.05);
            assert!(outcome.sense_time.0 > 0.0 && outcome.sense_time.0 <= 2e-9);
        }
    }

    #[test]
    fn slow_corner_reads_later_than_fast_corner() {
        use crate::technology::ProcessCorner;
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        let sa = SenseAmplifier::new(Volts(0.0), Volts(0.08));
        let fast = read_cell(
            &tech,
            &pvt.with_corner(ProcessCorner::FastFast),
            &MismatchSample::none(),
            &sa,
            true,
            Seconds(2e-9),
        )
        .unwrap();
        let slow = read_cell(
            &tech,
            &pvt.with_corner(ProcessCorner::SlowSlow),
            &MismatchSample::none(),
            &sa,
            true,
            Seconds(2e-9),
        )
        .unwrap();
        assert!(slow.sense_time.0 > fast.sense_time.0);
    }

    #[test]
    fn insufficient_swing_is_reported_as_an_error() {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        // Demand an impossible differential within a very short window.
        let sa = SenseAmplifier::new(Volts(0.0), Volts(0.9));
        let result = read_cell(
            &tech,
            &pvt,
            &MismatchSample::none(),
            &sa,
            true,
            Seconds(0.2e-9),
        );
        assert!(result.is_err());
    }
}
