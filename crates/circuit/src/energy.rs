//! Energy accounting for in-SRAM operations.
//!
//! The paper models two energy contributions (Eqs. 7–8): the data-independent
//! *write energy* `E_wr(VDD, T)` and the operand-dependent *discharge energy*
//! `E_dc(d, VDD, V_WL, T)` which is dominated by re-charging the bit-line
//! capacitance after the discharge.  This module produces the reference
//! energies that the OPTIMA energy models are fitted against.

use crate::pvt::PvtConditions;
use crate::technology::Technology;
use optima_math::units::{Joules, Volts};
use serde::{Deserialize, Serialize};

/// Leakage/short-circuit overhead applied to the ideal `C·V²` write energy,
/// growing slowly with temperature.
const WRITE_TEMPERATURE_COEFFICIENT: f64 = 6e-4;

/// Temperature coefficient of the discharge (pre-charge replacement) energy.
const DISCHARGE_TEMPERATURE_COEFFICIENT: f64 = 3e-4;

/// Energy breakdown of a single in-SRAM operation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy of the cell write preceding the computation.
    pub write: Joules,
    /// Energy to re-charge the bit-line after the data-dependent discharge.
    pub discharge: Joules,
    /// Static/peripheral overhead (word-line driver, clocking).
    pub overhead: Joules,
}

impl EnergyReport {
    /// Builds the report for one operation given the measured pre-charge
    /// replacement energy.
    pub fn for_operation(
        tech: &Technology,
        pvt: &PvtConditions,
        cells_on_bitline: usize,
        precharge_energy: Joules,
    ) -> Self {
        EnergyReport {
            write: write_energy(tech, pvt),
            discharge: discharge_energy_from_precharge(pvt, tech, precharge_energy),
            overhead: overhead_energy(tech, pvt, cells_on_bitline),
        }
    }

    /// Total energy of the operation.
    pub fn total(&self) -> Joules {
        Joules(self.write.0 + self.discharge.0 + self.overhead.0)
    }
}

/// Reference write energy `E_wr(VDD, T)`.
///
/// Writing flips both bit-lines rail-to-rail and charges the internal cell
/// node, so the energy is `≈ (C_BL + C_node) · VDD²`, independent of the data
/// (symmetric cell layout), with a weak positive temperature dependence from
/// increased leakage during the write pulse.
pub fn write_energy(tech: &Technology, pvt: &PvtConditions) -> Joules {
    let c_total = tech.bitline_capacitance(16).0 + tech.cell_node_cap.0;
    let delta_t = pvt.temperature.0 - tech.temperature_nominal.0;
    let temp_factor = 1.0 + WRITE_TEMPERATURE_COEFFICIENT * delta_t;
    Joules(c_total * pvt.vdd.0 * pvt.vdd.0 * temp_factor.max(0.0))
}

/// Reference discharge energy `E_dc` given the measured bit-line discharge `ΔV_BL`.
///
/// The energy the supply must deliver during the next pre-charge is
/// `C_BL · VDD · ΔV_BL`; an additional weakly temperature-dependent factor
/// models the extra cross-conduction in the pre-charge devices.
pub fn discharge_energy(
    tech: &Technology,
    pvt: &PvtConditions,
    cells_on_bitline: usize,
    delta_v: Volts,
) -> Joules {
    let capacitance = tech.bitline_capacitance(cells_on_bitline).0;
    let base = capacitance * pvt.vdd.0 * delta_v.0.max(0.0);
    let delta_t = pvt.temperature.0 - tech.temperature_nominal.0;
    let temp_factor = 1.0 + DISCHARGE_TEMPERATURE_COEFFICIENT * delta_t;
    Joules(base * temp_factor.max(0.0))
}

/// Variant of [`discharge_energy`] that starts from an already-computed
/// pre-charge replacement energy (as returned by
/// [`crate::bitline::BitLine::precharge`]).
pub fn discharge_energy_from_precharge(
    pvt: &PvtConditions,
    tech: &Technology,
    precharge_energy: Joules,
) -> Joules {
    let delta_t = pvt.temperature.0 - tech.temperature_nominal.0;
    let temp_factor = 1.0 + DISCHARGE_TEMPERATURE_COEFFICIENT * delta_t;
    Joules(precharge_energy.0 * temp_factor.max(0.0))
}

/// Peripheral overhead energy (word-line driver and clock distribution),
/// proportional to `VDD²` and the column size.
pub fn overhead_energy(tech: &Technology, pvt: &PvtConditions, cells_on_bitline: usize) -> Joules {
    let driver_cap = 0.4e-15 + 0.01e-15 * cells_on_bitline as f64;
    let _ = tech;
    Joules(driver_cap * pvt.vdd.0 * pvt.vdd.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optima_math::units::Celsius;

    fn setup() -> (Technology, PvtConditions) {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        (tech, pvt)
    }

    #[test]
    fn write_energy_is_femtojoule_scale() {
        let (tech, pvt) = setup();
        let e = write_energy(&tech, &pvt);
        let fj = e.to_femtojoules().0;
        assert!(
            fj > 1.0 && fj < 200.0,
            "write energy {fj} fJ is implausible"
        );
    }

    #[test]
    fn write_energy_scales_with_vdd_squared() {
        let (tech, pvt) = setup();
        let nominal = write_energy(&tech, &pvt).0;
        let high = write_energy(&tech, &pvt.with_vdd(Volts(1.1))).0;
        assert!((high / nominal - 1.21).abs() < 0.01);
    }

    #[test]
    fn write_energy_grows_slightly_with_temperature() {
        let (tech, pvt) = setup();
        let cold = write_energy(&tech, &pvt.with_temperature(Celsius(-40.0))).0;
        let hot = write_energy(&tech, &pvt.with_temperature(Celsius(125.0))).0;
        assert!(hot > cold);
        assert!(hot / cold < 1.2, "temperature effect must stay weak");
    }

    #[test]
    fn discharge_energy_is_proportional_to_delta_v() {
        let (tech, pvt) = setup();
        let small = discharge_energy(&tech, &pvt, 16, Volts(0.1)).0;
        let large = discharge_energy(&tech, &pvt, 16, Volts(0.4)).0;
        assert!((large / small - 4.0).abs() < 1e-9);
        assert_eq!(discharge_energy(&tech, &pvt, 16, Volts(-0.1)).0, 0.0);
    }

    #[test]
    fn discharge_energy_scales_with_bitline_size() {
        let (tech, pvt) = setup();
        let short = discharge_energy(&tech, &pvt, 4, Volts(0.3)).0;
        let long = discharge_energy(&tech, &pvt, 256, Volts(0.3)).0;
        assert!(long > short);
    }

    #[test]
    fn report_total_is_sum_of_parts() {
        let (tech, pvt) = setup();
        let report = EnergyReport::for_operation(&tech, &pvt, 16, Joules(5e-15));
        let total = report.total().0;
        assert!((total - (report.write.0 + report.discharge.0 + report.overhead.0)).abs() < 1e-24);
        assert!(report.overhead.0 > 0.0);
    }

    #[test]
    fn precharge_based_and_delta_based_discharge_energy_agree() {
        let (tech, pvt) = setup();
        let delta_v = Volts(0.25);
        let cap = tech.bitline_capacitance(16);
        let precharge = Joules(cap.0 * pvt.vdd.0 * delta_v.0);
        let from_precharge = discharge_energy_from_precharge(&pvt, &tech, precharge).0;
        let from_delta = discharge_energy(&tech, &pvt, 16, delta_v).0;
        assert!((from_precharge - from_delta).abs() / from_delta < 1e-9);
    }
}
