//! Process / voltage / temperature operating conditions and sweeps.
//!
//! Section III-2 of the paper analyses how supply voltage, temperature,
//! process corners and transistor mismatch move the bit-line discharge
//! (Fig. 5).  This module provides the operating-point type shared by the
//! golden-reference simulator and the OPTIMA behavioural models, plus sweep
//! helpers used by the calibration pipeline and the experiment harnesses.

use crate::technology::{ProcessCorner, Technology};
use optima_math::units::{Celsius, Volts};
use serde::{Deserialize, Serialize};

/// A process/voltage/temperature operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PvtConditions {
    /// Supply voltage.
    pub vdd: Volts,
    /// Junction temperature.
    pub temperature: Celsius,
    /// Systematic process corner.
    pub corner: ProcessCorner,
}

impl PvtConditions {
    /// Nominal conditions of the given technology (typical corner, nominal
    /// VDD and temperature).
    pub fn nominal(tech: &Technology) -> Self {
        PvtConditions {
            vdd: tech.vdd_nominal,
            temperature: tech.temperature_nominal,
            corner: ProcessCorner::TypicalTypical,
        }
    }

    /// Returns a copy with a different supply voltage.
    pub fn with_vdd(mut self, vdd: Volts) -> Self {
        self.vdd = vdd;
        self
    }

    /// Returns a copy with a different temperature.
    pub fn with_temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = temperature;
        self
    }

    /// Returns a copy with a different process corner.
    pub fn with_corner(mut self, corner: ProcessCorner) -> Self {
        self.corner = corner;
        self
    }

    /// Supply-voltage deviation from the technology's nominal VDD.
    pub fn delta_vdd(&self, tech: &Technology) -> Volts {
        Volts(self.vdd.0 - tech.vdd_nominal.0)
    }

    /// Temperature deviation from the technology's nominal temperature.
    pub fn delta_temperature(&self, tech: &Technology) -> Celsius {
        Celsius(self.temperature.0 - tech.temperature_nominal.0)
    }
}

/// A rectangular sweep over PVT conditions.
///
/// # Example
///
/// ```rust
/// use optima_circuit::prelude::*;
///
/// let tech = Technology::tsmc65_like();
/// let sweep = PvtSweep::new(&tech)
///     .vdd_range(0.9, 1.1, 3)
///     .temperature_range(-40.0, 125.0, 4);
/// let points = sweep.points();
/// assert_eq!(points.len(), 3 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvtSweep {
    vdd_values: Vec<f64>,
    temperature_values: Vec<f64>,
    corners: Vec<ProcessCorner>,
}

impl PvtSweep {
    /// Creates a sweep containing only the nominal point of `tech`.
    pub fn new(tech: &Technology) -> Self {
        PvtSweep {
            vdd_values: vec![tech.vdd_nominal.0],
            temperature_values: vec![tech.temperature_nominal.0],
            corners: vec![ProcessCorner::TypicalTypical],
        }
    }

    /// Replaces the supply-voltage axis with `count` evenly spaced values in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn vdd_range(mut self, lo: f64, hi: f64, count: usize) -> Self {
        self.vdd_values = linspace(lo, hi, count);
        self
    }

    /// Replaces the temperature axis with `count` evenly spaced values in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn temperature_range(mut self, lo: f64, hi: f64, count: usize) -> Self {
        self.temperature_values = linspace(lo, hi, count);
        self
    }

    /// Replaces the corner axis.
    pub fn corners(mut self, corners: &[ProcessCorner]) -> Self {
        self.corners = corners.to_vec();
        self
    }

    /// Uses all five process corners.
    pub fn all_corners(self) -> Self {
        self.corners(&ProcessCorner::ALL)
    }

    /// The Cartesian product of the three axes.
    pub fn points(&self) -> Vec<PvtConditions> {
        let mut out = Vec::with_capacity(
            self.vdd_values.len() * self.temperature_values.len() * self.corners.len(),
        );
        for &corner in &self.corners {
            for &vdd in &self.vdd_values {
                for &temp in &self.temperature_values {
                    out.push(PvtConditions {
                        vdd: Volts(vdd),
                        temperature: Celsius(temp),
                        corner,
                    });
                }
            }
        }
        out
    }

    /// Number of points in the sweep.
    pub fn len(&self) -> usize {
        self.vdd_values.len() * self.temperature_values.len() * self.corners.len()
    }

    /// Returns `true` when the sweep has no points (never the case for a
    /// sweep built through the public API, which always starts nominal).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `count` evenly spaced values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn linspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "linspace needs at least one point");
    if count == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (count - 1) as f64;
    (0..count).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_conditions_match_technology() {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        assert_eq!(pvt.vdd, tech.vdd_nominal);
        assert_eq!(pvt.temperature, tech.temperature_nominal);
        assert_eq!(pvt.corner, ProcessCorner::TypicalTypical);
        assert_eq!(pvt.delta_vdd(&tech).0, 0.0);
        assert_eq!(pvt.delta_temperature(&tech).0, 0.0);
    }

    #[test]
    fn builders_replace_fields() {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech)
            .with_vdd(Volts(0.9))
            .with_temperature(Celsius(85.0))
            .with_corner(ProcessCorner::SlowSlow);
        assert_eq!(pvt.vdd.0, 0.9);
        assert_eq!(pvt.temperature.0, 85.0);
        assert_eq!(pvt.corner, ProcessCorner::SlowSlow);
        assert!((pvt.delta_vdd(&tech).0 + 0.1).abs() < 1e-12);
    }

    #[test]
    fn sweep_generates_cartesian_product() {
        let tech = Technology::tsmc65_like();
        let sweep = PvtSweep::new(&tech)
            .vdd_range(0.9, 1.1, 5)
            .temperature_range(0.0, 100.0, 3)
            .all_corners();
        assert_eq!(sweep.len(), 5 * 3 * 5);
        assert_eq!(sweep.points().len(), sweep.len());
        assert!(!sweep.is_empty());
    }

    #[test]
    fn default_sweep_is_single_nominal_point() {
        let tech = Technology::tsmc65_like();
        let sweep = PvtSweep::new(&tech);
        let points = sweep.points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0], PvtConditions::nominal(&tech));
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 3.0, 1), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_rejects_zero_count() {
        let _ = linspace(0.0, 1.0, 0);
    }
}
