//! Per-cell defect maps and lifetime (aging) trajectories.
//!
//! The simulator models PVT corners and transistor mismatch, but a pristine
//! array forever — real in-SRAM compute macros ship with stuck-at cells,
//! shorted or open bit-lines and per-cell retention drift, and accumulate
//! V_th aging and self-heating over their deployed lifetime.  This module
//! provides the circuit-level description of both:
//!
//! * [`DefectModel`] — manufacturing defect rates plus a sampling seed,
//! * [`DefectMap`] — one sampled defect instance, keyed to an
//!   [`ArrayConfig`] geometry (data columns **and** spare columns), sampled
//!   deterministically per cell via the SplitMix64 `stream_seed` discipline
//!   so the map is bit-identical regardless of iteration or thread order,
//! * [`LifetimeTrajectory`] / [`LifetimePoint`] — deployment-time evolution
//!   of temperature drift, word-line-referred V_th aging and retention-drift
//!   growth, composable with [`PvtConditions`].
//!
//! The mitigation side (replica-column redundancy, remapping, noise-aware
//! fine-tuning) lives upstack in `optima_imc::reliability`; this module only
//! describes the silicon.

use crate::array::ArrayConfig;
use crate::error::CircuitError;
use crate::pvt::PvtConditions;
use optima_math::seed::{split_next, standard_normal, stream_seed, unit_interval};
use optima_math::units::{Celsius, Volts};
use serde::{Deserialize, Serialize};

/// Domain-separation salt of the per-cell sampling streams.
const CELL_SALT: u64 = 0x6F70_7469_6D61_0001;

/// Domain-separation salt of the per-bit-line sampling streams.
const BITLINE_SALT: u64 = 0x6F70_7469_6D61_0002;

/// Retention drift is clamped above this relative floor so a drifted cell
/// can weaken but never invert the sign of its discharge.
const DRIFT_FLOOR: f64 = -0.95;

/// Behaviour of one SRAM bit-cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellDefect {
    /// The cell stores and reads back its written value.
    Healthy,
    /// The cell reads as 0 regardless of the written value (e.g. a broken
    /// pull-up): its bit-line never discharges through the cell.
    StuckAtZero,
    /// The cell reads as 1 regardless of the written value: its bit-line
    /// always discharges as if the stored bit were set.
    StuckAtOne,
}

/// Fault of one whole bit-line column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitLineFault {
    /// The column conducts normally.
    Healthy,
    /// The bit-line is open (broken wire): no discharge current flows, the
    /// column contributes nothing regardless of the stored bit.
    Open,
    /// The bit-line is shorted to ground: the column discharges to the full
    /// rail on every access, regardless of the stored bit.
    Shorted,
}

/// Manufacturing defect rates and the sampling seed of one defect
/// population.
///
/// All rates are probabilities in `[0, 1]`; `retention_sigma` is the
/// standard deviation of the per-cell relative retention drift (`0.05` means
/// a cell's discharge typically deviates by ±5 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectModel {
    /// Probability of a cell being stuck at 0.
    pub stuck_at_zero_rate: f64,
    /// Probability of a cell being stuck at 1.
    pub stuck_at_one_rate: f64,
    /// Probability of a bit-line being open.
    pub open_bitline_rate: f64,
    /// Probability of a bit-line being shorted to ground.
    pub short_bitline_rate: f64,
    /// Standard deviation of the per-cell relative retention drift.
    pub retention_sigma: f64,
    /// Base seed of the deterministic sampling streams.
    pub seed: u64,
}

impl DefectModel {
    /// A defect-free population (all rates zero).
    pub fn pristine(seed: u64) -> Self {
        DefectModel {
            stuck_at_zero_rate: 0.0,
            stuck_at_one_rate: 0.0,
            open_bitline_rate: 0.0,
            short_bitline_rate: 0.0,
            retention_sigma: 0.0,
            seed,
        }
    }

    /// A single-knob population: `rate` is split evenly between the two
    /// stuck-at kinds, bit-line faults occur at an eighth of `rate` each
    /// (column faults are much rarer than cell faults in practice), and the
    /// retention drift σ scales with `rate`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        DefectModel {
            stuck_at_zero_rate: rate / 2.0,
            stuck_at_one_rate: rate / 2.0,
            open_bitline_rate: rate / 8.0,
            short_bitline_rate: rate / 8.0,
            retention_sigma: rate / 4.0,
            seed,
        }
    }

    /// Checks that every rate is a probability and the σ is finite.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidOperatingPoint`] naming the offending field.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let rates = [
            ("stuck_at_zero_rate", self.stuck_at_zero_rate),
            ("stuck_at_one_rate", self.stuck_at_one_rate),
            ("open_bitline_rate", self.open_bitline_rate),
            ("short_bitline_rate", self.short_bitline_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(CircuitError::InvalidOperatingPoint {
                    context: format!("defect {name} must be in [0, 1], got {rate}"),
                });
            }
        }
        if self.stuck_at_zero_rate + self.stuck_at_one_rate > 1.0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!(
                    "stuck-at rates sum to {} > 1",
                    self.stuck_at_zero_rate + self.stuck_at_one_rate
                ),
            });
        }
        if self.open_bitline_rate + self.short_bitline_rate > 1.0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!(
                    "bit-line fault rates sum to {} > 1",
                    self.open_bitline_rate + self.short_bitline_rate
                ),
            });
        }
        if !self.retention_sigma.is_finite() || self.retention_sigma < 0.0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!(
                    "retention_sigma must be finite and non-negative, got {}",
                    self.retention_sigma
                ),
            });
        }
        Ok(())
    }
}

/// Aggregate defect counts of one sampled [`DefectMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DefectCounts {
    /// Cells stuck at 0.
    pub stuck_at_zero: usize,
    /// Cells stuck at 1.
    pub stuck_at_one: usize,
    /// Open bit-lines.
    pub open_bitlines: usize,
    /// Shorted bit-lines.
    pub shorted_bitlines: usize,
}

impl DefectCounts {
    /// Total number of defective cells and bit-lines.
    pub fn total(&self) -> usize {
        self.stuck_at_zero + self.stuck_at_one + self.open_bitlines + self.shorted_bitlines
    }
}

/// One sampled defect instance of a physical array.
///
/// The map covers the **physical** geometry — `rows ×
/// (columns + spare_columns)` cells and one fault state per physical
/// bit-line — so the spare columns of a redundancy scheme carry their own
/// (possibly defective) cells.  Sampling is deterministic: every cell and
/// bit-line draws from its own `stream_seed`-derived stream keyed by its
/// physical index, so the identical `(ArrayConfig, DefectModel)` pair always
/// produces the identical map, in any iteration order and at any thread
/// count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectMap {
    array: ArrayConfig,
    /// Per-cell defect kind, row-major over the physical columns.
    cells: Vec<CellDefect>,
    /// Per-cell relative retention drift (0 = pristine), row-major.
    drift: Vec<f64>,
    /// Per-physical-bit-line fault state.
    bitlines: Vec<BitLineFault>,
}

impl DefectMap {
    /// A defect-free map for the given geometry.
    pub fn none(array: &ArrayConfig) -> Self {
        let cells = array.rows as usize * array.physical_columns() as usize;
        DefectMap {
            array: *array,
            cells: vec![CellDefect::Healthy; cells],
            drift: vec![0.0; cells],
            bitlines: vec![BitLineFault::Healthy; array.physical_columns() as usize],
        }
    }

    /// Samples one defect instance of `array` from `model`.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayConfig::validate`] and [`DefectModel::validate`]
    /// failures.
    pub fn sample(array: &ArrayConfig, model: &DefectModel) -> Result<Self, CircuitError> {
        array.validate()?;
        model.validate()?;
        let columns = array.physical_columns() as usize;
        let len = array.rows as usize * columns;
        let mut cells = vec![CellDefect::Healthy; len];
        let mut drift = vec![0.0f64; len];
        let saz = model.stuck_at_zero_rate;
        let sao = model.stuck_at_one_rate;
        let sigma = model.retention_sigma;
        // Every cell owns an independent SplitMix64 stream keyed by its
        // physical index, so the sampled map does not depend on the loop
        // order below.
        // optima-lint: hot
        for (index, (cell, delta)) in cells.iter_mut().zip(drift.iter_mut()).enumerate() {
            let mut state = stream_seed(model.seed ^ CELL_SALT, index as u64);
            let kind = unit_interval(split_next(&mut state));
            *cell = if kind < saz {
                CellDefect::StuckAtZero
            } else if kind < saz + sao {
                CellDefect::StuckAtOne
            } else {
                CellDefect::Healthy
            };
            let u1 = unit_interval(split_next(&mut state));
            let u2 = unit_interval(split_next(&mut state));
            *delta = (sigma * standard_normal(u1, u2)).max(DRIFT_FLOOR);
        }
        // optima-lint: end-hot
        let mut bitlines = vec![BitLineFault::Healthy; columns];
        for (column, fault) in bitlines.iter_mut().enumerate() {
            let mut state = stream_seed(model.seed ^ BITLINE_SALT, column as u64);
            let kind = unit_interval(split_next(&mut state));
            *fault = if kind < model.open_bitline_rate {
                BitLineFault::Open
            } else if kind < model.open_bitline_rate + model.short_bitline_rate {
                BitLineFault::Shorted
            } else {
                BitLineFault::Healthy
            };
        }
        Ok(DefectMap {
            array: *array,
            cells,
            drift,
            bitlines,
        })
    }

    /// The geometry this map was sampled for.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// `true` when every cell and bit-line is healthy and no cell drifts.
    pub fn is_pristine(&self) -> bool {
        self.cells.iter().all(|&c| c == CellDefect::Healthy)
            && self.bitlines.iter().all(|&b| b == BitLineFault::Healthy)
            && self.drift.iter().all(|&d| d == 0.0)
    }

    /// Defect kind of the cell at `(row, column)` (physical column index).
    ///
    /// # Errors
    ///
    /// [`CircuitError::CellOutOfRange`] naming the offending coordinate.
    pub fn cell(&self, row: u16, column: u16) -> Result<CellDefect, CircuitError> {
        self.check(row, column)?;
        Ok(self.cell_unchecked(row, column))
    }

    /// Relative retention drift of the cell at `(row, column)`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::CellOutOfRange`] naming the offending coordinate.
    pub fn drift(&self, row: u16, column: u16) -> Result<f64, CircuitError> {
        self.check(row, column)?;
        Ok(self.drift_unchecked(row, column))
    }

    /// Fault state of physical bit-line `column`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::CellOutOfRange`] naming the offending coordinate.
    pub fn bitline(&self, column: u16) -> Result<BitLineFault, CircuitError> {
        self.check(0, column)?;
        Ok(self.bitline_unchecked(column))
    }

    /// Unchecked cell accessor for validated hot paths.
    ///
    /// Callers must have validated `(row, column)` against the map geometry
    /// (e.g. once at fault-state construction).
    #[inline]
    pub fn cell_unchecked(&self, row: u16, column: u16) -> CellDefect {
        self.cells[row as usize * self.array.physical_columns() as usize + column as usize]
    }

    /// Unchecked drift accessor for validated hot paths.
    #[inline]
    pub fn drift_unchecked(&self, row: u16, column: u16) -> f64 {
        self.drift[row as usize * self.array.physical_columns() as usize + column as usize]
    }

    /// Unchecked bit-line accessor for validated hot paths.
    #[inline]
    pub fn bitline_unchecked(&self, column: u16) -> BitLineFault {
        self.bitlines[column as usize]
    }

    /// `true` when the cell at `(row, column)` or its bit-line is digitally
    /// defective (stuck cell, open or shorted bit-line).  Retention drift is
    /// analog and does not count — redundancy planning targets hard faults.
    #[inline]
    pub fn is_hard_faulted(&self, row: u16, column: u16) -> bool {
        self.cell_unchecked(row, column) != CellDefect::Healthy
            || self.bitline_unchecked(column) != BitLineFault::Healthy
    }

    /// Aggregate defect counts over the physical array.
    pub fn counts(&self) -> DefectCounts {
        let mut counts = DefectCounts::default();
        for &cell in &self.cells {
            match cell {
                CellDefect::StuckAtZero => counts.stuck_at_zero += 1,
                CellDefect::StuckAtOne => counts.stuck_at_one += 1,
                CellDefect::Healthy => {}
            }
        }
        for &fault in &self.bitlines {
            match fault {
                BitLineFault::Open => counts.open_bitlines += 1,
                BitLineFault::Shorted => counts.shorted_bitlines += 1,
                BitLineFault::Healthy => {}
            }
        }
        counts
    }

    fn check(&self, row: u16, column: u16) -> Result<(), CircuitError> {
        if row >= self.array.rows || column >= self.array.physical_columns() {
            return Err(CircuitError::CellOutOfRange {
                row,
                column,
                rows: self.array.rows,
                columns: self.array.physical_columns(),
            });
        }
        Ok(())
    }
}

/// Deployment-time evolution of the operating environment and the silicon.
///
/// One trajectory describes how conditions degrade per deployment step
/// (a step is whatever unit the deployment timeline uses — months in the
/// field, accelerated-stress intervals in qualification): the junction
/// temperature creeps up (self-heating, environment), negative-bias
/// temperature instability shifts the access transistors' V_th (modelled as
/// a word-line-referred voltage loss), and the per-cell retention drift
/// amplitude grows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeTrajectory {
    /// Junction-temperature increase per deployment step.
    pub temperature_drift_per_step: Celsius,
    /// Word-line-referred V_th shift per deployment step (NBTI-like aging).
    pub vth_shift_per_step: Volts,
    /// Relative growth of the retention-drift amplitude per step
    /// (`0.25` = each step amplifies the sampled per-cell drift by 25 % of
    /// its time-zero value).
    pub retention_growth_per_step: f64,
}

impl LifetimeTrajectory {
    /// A frozen-in-time trajectory: nothing ages.
    pub fn none() -> Self {
        LifetimeTrajectory {
            temperature_drift_per_step: Celsius(0.0),
            vth_shift_per_step: Volts(0.0),
            retention_growth_per_step: 0.0,
        }
    }

    /// An NBTI-like default: +2.5 °C, +4 mV V_th and +25 % drift amplitude
    /// per step — aggressive enough that a handful of steps visibly move the
    /// analog results.
    pub fn nbti_like() -> Self {
        LifetimeTrajectory {
            temperature_drift_per_step: Celsius(2.5),
            vth_shift_per_step: Volts(0.004),
            retention_growth_per_step: 0.25,
        }
    }

    /// Checks that every per-step increment is finite and non-regressive.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidOperatingPoint`] naming the offending field.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let fields = [
            (
                "temperature_drift_per_step",
                self.temperature_drift_per_step.0,
            ),
            ("vth_shift_per_step", self.vth_shift_per_step.0),
            ("retention_growth_per_step", self.retention_growth_per_step),
        ];
        for (name, value) in fields {
            if !value.is_finite() || value < 0.0 {
                return Err(CircuitError::InvalidOperatingPoint {
                    context: format!(
                        "lifetime {name} must be finite and non-negative, got {value}"
                    ),
                });
            }
        }
        Ok(())
    }

    /// The accumulated state after `step` deployment steps (`step = 0` is
    /// fresh silicon).
    pub fn at(&self, step: usize) -> LifetimePoint {
        let steps = step as f64;
        LifetimePoint {
            step,
            temperature_delta: Celsius(self.temperature_drift_per_step.0 * steps),
            vth_shift: Volts(self.vth_shift_per_step.0 * steps),
            retention_scale: 1.0 + self.retention_growth_per_step * steps,
        }
    }
}

/// The accumulated aging state at one point of a [`LifetimeTrajectory`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimePoint {
    /// Deployment step this point describes (0 = fresh).
    pub step: usize,
    /// Accumulated junction-temperature increase.
    pub temperature_delta: Celsius,
    /// Accumulated word-line-referred V_th shift.
    pub vth_shift: Volts,
    /// Multiplier on the sampled per-cell retention drift (1.0 = fresh).
    pub retention_scale: f64,
}

impl LifetimePoint {
    /// Fresh silicon: no drift, no aging.
    pub fn fresh() -> Self {
        LifetimePoint {
            step: 0,
            temperature_delta: Celsius(0.0),
            vth_shift: Volts(0.0),
            retention_scale: 1.0,
        }
    }

    /// Composes this aging state with a PVT operating point: the junction
    /// temperature rises by the accumulated drift.  (The V_th shift acts
    /// inside the array, on the word-line overdrive, not on the ambient
    /// conditions — the multiplier applies it there.)
    pub fn apply_to(&self, pvt: PvtConditions) -> PvtConditions {
        let temperature = Celsius(pvt.temperature.0 + self.temperature_delta.0);
        pvt.with_temperature(temperature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spare_array() -> ArrayConfig {
        ArrayConfig {
            spare_columns: 2,
            ..ArrayConfig::paper()
        }
    }

    #[test]
    fn pristine_map_has_no_defects() {
        let map = DefectMap::none(&spare_array());
        assert!(map.is_pristine());
        assert_eq!(map.counts().total(), 0);
        // The map covers the spares too.
        assert_eq!(map.bitline(5).unwrap(), BitLineFault::Healthy);
        assert!(map.bitline(6).is_err());
    }

    #[test]
    fn sampling_is_deterministic_and_geometry_keyed() {
        let array = spare_array();
        let model = DefectModel::uniform(0.2, 99);
        let a = DefectMap::sample(&array, &model).unwrap();
        let b = DefectMap::sample(&array, &model).unwrap();
        assert_eq!(a, b);
        let other_seed = DefectModel::uniform(0.2, 100);
        let c = DefectMap::sample(&array, &other_seed).unwrap();
        assert_ne!(a, c);
        assert_eq!(a.array(), &array);
    }

    #[test]
    fn rates_shape_the_sampled_population() {
        let array = ArrayConfig {
            rows: 64,
            columns: 64,
            ..ArrayConfig::paper()
        };
        let heavy = DefectMap::sample(&array, &DefectModel::uniform(0.5, 7)).unwrap();
        let counts = heavy.counts();
        let cells = 64 * 64;
        // ~25 % of cells per stuck-at kind at rate 0.5; allow wide slack.
        assert!(counts.stuck_at_zero > cells / 8, "{counts:?}");
        assert!(counts.stuck_at_one > cells / 8, "{counts:?}");
        let none = DefectMap::sample(&array, &DefectModel::pristine(7)).unwrap();
        assert!(none.is_pristine());
    }

    #[test]
    fn zero_rate_sampling_matches_none_exactly() {
        let array = spare_array();
        let sampled = DefectMap::sample(&array, &DefectModel::pristine(3)).unwrap();
        assert_eq!(sampled, DefectMap::none(&array));
    }

    #[test]
    fn invalid_models_are_rejected() {
        let mut model = DefectModel::pristine(0);
        model.stuck_at_zero_rate = 1.5;
        assert!(model.validate().is_err());
        let mut model = DefectModel::pristine(0);
        model.stuck_at_zero_rate = 0.7;
        model.stuck_at_one_rate = 0.7;
        assert!(model.validate().is_err());
        let mut model = DefectModel::pristine(0);
        model.retention_sigma = f64::NAN;
        assert!(model.validate().is_err());
        assert!(DefectModel::uniform(0.3, 1).validate().is_ok());
    }

    #[test]
    fn out_of_range_access_names_the_coordinate() {
        let map = DefectMap::none(&ArrayConfig::paper());
        let err = map.cell(16, 0).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("row 16"), "{message}");
        assert!(message.contains("column 0"), "{message}");
        assert!(map.drift(0, 4).is_err());
        assert!(map.cell(15, 3).is_ok());
    }

    #[test]
    fn drift_respects_the_floor() {
        let array = ArrayConfig {
            rows: 32,
            columns: 32,
            ..ArrayConfig::paper()
        };
        let mut model = DefectModel::pristine(11);
        model.retention_sigma = 5.0; // extreme σ to hit the clamp
        let map = DefectMap::sample(&array, &model).unwrap();
        for row in 0..32 {
            for column in 0..32 {
                assert!(map.drift(row, column).unwrap() >= DRIFT_FLOOR);
            }
        }
    }

    #[test]
    fn lifetime_trajectory_accumulates_linearly() {
        let trajectory = LifetimeTrajectory::nbti_like();
        trajectory.validate().unwrap();
        let fresh = trajectory.at(0);
        assert_eq!(fresh.temperature_delta, Celsius(0.0));
        assert_eq!(fresh.vth_shift, Volts(0.0));
        assert_eq!(fresh.retention_scale, 1.0);
        let aged = trajectory.at(4);
        assert!((aged.temperature_delta.0 - 10.0).abs() < 1e-12);
        assert!((aged.vth_shift.0 - 0.016).abs() < 1e-12);
        assert!((aged.retention_scale - 2.0).abs() < 1e-12);
        assert_eq!(LifetimeTrajectory::none().at(9), {
            let mut p = LifetimePoint::fresh();
            p.step = 9;
            p
        });
    }

    #[test]
    fn lifetime_point_composes_with_pvt() {
        use crate::technology::Technology;
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        let aged = LifetimeTrajectory::nbti_like().at(2).apply_to(pvt);
        assert!((aged.temperature.0 - pvt.temperature.0 - 5.0).abs() < 1e-12);
        assert_eq!(aged.vdd, pvt.vdd);
        assert_eq!(aged.corner, pvt.corner);
    }

    #[test]
    fn invalid_trajectories_are_rejected() {
        let mut t = LifetimeTrajectory::none();
        t.vth_shift_per_step = Volts(-0.01);
        assert!(t.validate().is_err());
        t = LifetimeTrajectory::none();
        t.retention_growth_per_step = f64::INFINITY;
        assert!(t.validate().is_err());
    }
}
