//! The 6T SRAM cell and SRAM cell arrays (Fig. 2 of the paper).
//!
//! For discharge-based computing the relevant analog behaviour of a cell is
//! the current it sinks from the bit-line-bar when (a) it stores a logic '1'
//! and (b) its word-line is driven to some analog voltage `V_WL`.  The
//! current path is the series connection of the access transistor (gate at
//! `V_WL`) and the pull-down transistor (gate at the full internal node
//! voltage), with the access transistor dominating because its gate voltage
//! is the smaller of the two.

use crate::error::CircuitError;
use crate::montecarlo::MismatchSample;
use crate::mosfet::{Mosfet, MosfetKind};
use crate::pvt::PvtConditions;
use crate::technology::Technology;
use optima_math::units::{Amperes, Volts};
use serde::{Deserialize, Serialize};

/// A single 6T SRAM cell.
///
/// # Example
///
/// ```rust
/// use optima_circuit::prelude::*;
///
/// let tech = Technology::tsmc65_like();
/// let pvt = PvtConditions::nominal(&tech);
/// let cell = SramCell::new(true, &tech, &pvt, &MismatchSample::none());
/// // A cell storing '1' sinks current when the word line is high...
/// assert!(cell.discharge_current(Volts(1.0), Volts(1.0)).0 > 0.0);
/// // ...while a cell storing '0' does not discharge BLB at all.
/// let zero_cell = SramCell::new(false, &tech, &pvt, &MismatchSample::none());
/// assert_eq!(zero_cell.discharge_current(Volts(1.0), Volts(1.0)).0, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramCell {
    stored_bit: bool,
    access: Mosfet,
    pulldown: Mosfet,
    /// Voltage of the internal '1' storage node (tracks the supply voltage).
    internal_high: Volts,
    /// Degradation of the series path relative to the access device alone.
    ///
    /// The pull-down device has its gate at the full internal '1' level, so it
    /// is stronger than the access device; the series stack still conducts a
    /// little less than the access device alone would.
    series_factor: f64,
}

impl SramCell {
    /// Creates a cell holding `stored_bit` under the given operating conditions.
    pub fn new(
        stored_bit: bool,
        tech: &Technology,
        pvt: &PvtConditions,
        mismatch: &MismatchSample,
    ) -> Self {
        SramCell {
            stored_bit,
            access: Mosfet::new(MosfetKind::Nmos, tech, pvt, mismatch),
            pulldown: Mosfet::new(MosfetKind::Nmos, tech, pvt, &MismatchSample::none()),
            internal_high: pvt.vdd,
            series_factor: 0.92,
        }
    }

    /// The stored data bit.
    pub fn stored_bit(&self) -> bool {
        self.stored_bit
    }

    /// Overwrites the stored data bit (models a completed write operation).
    pub fn write(&mut self, bit: bool) {
        self.stored_bit = bit;
    }

    /// The access transistor of the BLB branch.
    pub fn access_transistor(&self) -> &Mosfet {
        &self.access
    }

    /// Current the cell sinks from BLB when the word-line is at `v_wl` and
    /// the bit-line-bar is at `v_blb`.
    ///
    /// A cell storing '0' has its BLB-side internal node at '1', so the
    /// pull-down of that branch is off and no discharge occurs — the
    /// multiplication property `δV ∝ V_WL · d` of Eq. 1.
    pub fn discharge_current(&self, v_wl: Volts, v_blb: Volts) -> Amperes {
        if !self.stored_bit {
            return Amperes(0.0);
        }
        // Access device: gate at V_WL, source at the (low) internal node,
        // drain at the bit-line-bar.
        let access_current = self.access.drain_current(v_wl, v_blb);
        // Pull-down device: gate at the internal '1' level (which tracks the
        // supply); it limits the current only marginally, captured by the
        // series factor.
        let pulldown_limit = self.pulldown.drain_current(self.internal_high, v_blb);
        Amperes(access_current.0.min(pulldown_limit.0) * self.series_factor)
    }
}

/// A word-oriented SRAM array: `words` rows of `bits_per_word` cells
/// (Fig. 2 shows 4-bit words, the configuration used by the multiplier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramArray {
    words: usize,
    bits_per_word: usize,
    data: Vec<u64>,
}

impl SramArray {
    /// Creates an array of `words` × `bits_per_word` cells, all storing zero.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidOperatingPoint`] when either dimension
    /// is zero or `bits_per_word > 64`.
    pub fn new(words: usize, bits_per_word: usize) -> Result<Self, CircuitError> {
        if words == 0 || bits_per_word == 0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "array dimensions must be non-zero".to_string(),
            });
        }
        if bits_per_word > 64 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!("bits_per_word {bits_per_word} exceeds 64"),
            });
        }
        Ok(SramArray {
            words,
            bits_per_word,
            data: vec![0; words],
        })
    }

    /// Number of words (rows).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of bits per word (columns).
    pub fn bits_per_word(&self) -> usize {
        self.bits_per_word
    }

    /// Writes `value` into word `address` (a digital write; the analog energy
    /// of writes is accounted for by [`crate::energy`]).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::AddressOutOfRange`] for an invalid address.
    /// * [`CircuitError::InvalidOperatingPoint`] when `value` does not fit the word width.
    pub fn write_word(&mut self, address: usize, value: u64) -> Result<(), CircuitError> {
        if address >= self.words {
            return Err(CircuitError::AddressOutOfRange {
                index: address,
                size: self.words,
            });
        }
        let max = if self.bits_per_word == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits_per_word) - 1
        };
        if value > max {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!("value {value} does not fit in {} bits", self.bits_per_word),
            });
        }
        self.data[address] = value;
        Ok(())
    }

    /// Reads the word stored at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::AddressOutOfRange`] for an invalid address.
    pub fn read_word(&self, address: usize) -> Result<u64, CircuitError> {
        if address >= self.words {
            return Err(CircuitError::AddressOutOfRange {
                index: address,
                size: self.words,
            });
        }
        Ok(self.data[address])
    }

    /// Reads bit `bit` of word `address`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::AddressOutOfRange`] if either index is invalid.
    pub fn read_bit(&self, address: usize, bit: usize) -> Result<bool, CircuitError> {
        if bit >= self.bits_per_word {
            return Err(CircuitError::AddressOutOfRange {
                index: bit,
                size: self.bits_per_word,
            });
        }
        Ok((self.read_word(address)? >> bit) & 1 == 1)
    }

    /// Number of '1' cells in the whole array (used by energy accounting).
    pub fn total_ones(&self) -> u32 {
        self.data.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Technology, PvtConditions) {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        (tech, pvt)
    }

    #[test]
    fn zero_cell_never_discharges() {
        let (tech, pvt) = setup();
        let cell = SramCell::new(false, &tech, &pvt, &MismatchSample::none());
        for v_wl in [0.0, 0.4, 0.7, 1.0] {
            assert_eq!(cell.discharge_current(Volts(v_wl), Volts(1.0)).0, 0.0);
        }
    }

    #[test]
    fn one_cell_discharge_grows_with_word_line_voltage() {
        let (tech, pvt) = setup();
        let cell = SramCell::new(true, &tech, &pvt, &MismatchSample::none());
        let i_low = cell.discharge_current(Volts(0.5), Volts(1.0)).0;
        let i_mid = cell.discharge_current(Volts(0.7), Volts(1.0)).0;
        let i_high = cell.discharge_current(Volts(1.0), Volts(1.0)).0;
        assert!(i_low < i_mid && i_mid < i_high);
    }

    #[test]
    fn subthreshold_word_line_still_leaks_slightly() {
        // Section III-1: applying a '0' WL voltage to a cell storing '1'
        // still produces a small discharge.
        let (tech, pvt) = setup();
        let cell = SramCell::new(true, &tech, &pvt, &MismatchSample::none());
        let leak = cell.discharge_current(Volts(0.3), Volts(1.0)).0;
        assert!(leak > 0.0);
        assert!(leak < cell.discharge_current(Volts(1.0), Volts(1.0)).0 * 1e-2);
    }

    #[test]
    fn write_updates_stored_bit() {
        let (tech, pvt) = setup();
        let mut cell = SramCell::new(false, &tech, &pvt, &MismatchSample::none());
        assert!(!cell.stored_bit());
        cell.write(true);
        assert!(cell.stored_bit());
        assert!(cell.discharge_current(Volts(1.0), Volts(1.0)).0 > 0.0);
    }

    #[test]
    fn array_write_read_round_trip() {
        let mut array = SramArray::new(8, 4).unwrap();
        array.write_word(3, 0b1010).unwrap();
        assert_eq!(array.read_word(3).unwrap(), 0b1010);
        assert!(array.read_bit(3, 1).unwrap());
        assert!(!array.read_bit(3, 0).unwrap());
        assert_eq!(array.total_ones(), 2);
    }

    #[test]
    fn array_rejects_invalid_dimensions_and_addresses() {
        assert!(SramArray::new(0, 4).is_err());
        assert!(SramArray::new(4, 0).is_err());
        assert!(SramArray::new(4, 65).is_err());
        let mut array = SramArray::new(4, 4).unwrap();
        assert!(array.write_word(4, 0).is_err());
        assert!(array.write_word(0, 16).is_err());
        assert!(array.read_word(9).is_err());
        assert!(array.read_bit(0, 4).is_err());
    }

    #[test]
    fn array_dimensions_accessors() {
        let array = SramArray::new(16, 4).unwrap();
        assert_eq!(array.words(), 16);
        assert_eq!(array.bits_per_word(), 4);
    }
}
