//! CMOS technology description: nominal device parameters, process corners
//! and temperature dependence.
//!
//! The paper uses a TSMC 65 nm technology; its exact parameters are
//! proprietary, so this module provides a *65 nm-class* parameter set
//! ([`Technology::tsmc65_like`]) that reproduces the qualitative device
//! behaviour the paper relies on (see DESIGN.md, substitution table).

use optima_math::units::{Celsius, Farads, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Systematic process corner of a fabricated die.
///
/// `FF`/`SS` shift both NMOS and PMOS fast/slow; the skewed corners shift the
/// device types in opposite directions.  For the bit-line discharge only the
/// NMOS pull-down path matters, so `FastSlow` behaves close to `FastFast` and
/// `SlowFast` close to `SlowSlow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ProcessCorner {
    /// Fast NMOS, fast PMOS.
    FastFast,
    /// Typical NMOS, typical PMOS (nominal).
    #[default]
    TypicalTypical,
    /// Slow NMOS, slow PMOS.
    SlowSlow,
    /// Fast NMOS, slow PMOS.
    FastSlow,
    /// Slow NMOS, fast PMOS.
    SlowFast,
}

impl ProcessCorner {
    /// All corners, in the order they are usually plotted.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::FastFast,
        ProcessCorner::TypicalTypical,
        ProcessCorner::SlowSlow,
        ProcessCorner::FastSlow,
        ProcessCorner::SlowFast,
    ];

    /// NMOS threshold-voltage shift of this corner relative to nominal (volts).
    pub fn nmos_vth_shift(self) -> f64 {
        match self {
            ProcessCorner::FastFast | ProcessCorner::FastSlow => -0.03,
            ProcessCorner::TypicalTypical => 0.0,
            ProcessCorner::SlowSlow | ProcessCorner::SlowFast => 0.03,
        }
    }

    /// NMOS transconductance (mobility) scaling of this corner relative to nominal.
    pub fn nmos_beta_scale(self) -> f64 {
        match self {
            ProcessCorner::FastFast | ProcessCorner::FastSlow => 1.12,
            ProcessCorner::TypicalTypical => 1.0,
            ProcessCorner::SlowSlow | ProcessCorner::SlowFast => 0.88,
        }
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ProcessCorner::FastFast => "FF",
            ProcessCorner::TypicalTypical => "TT",
            ProcessCorner::SlowSlow => "SS",
            ProcessCorner::FastSlow => "FS",
            ProcessCorner::SlowFast => "SF",
        };
        write!(f, "{text}")
    }
}

/// Nominal parameters of a CMOS technology node.
///
/// All voltages in volts, capacitances in farads, transconductance in A/V².
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Name of the technology node (informational only).
    pub name: String,
    /// Nominal supply voltage.
    pub vdd_nominal: Volts,
    /// Nominal NMOS threshold voltage at the nominal temperature.
    pub nmos_vth: Volts,
    /// Nominal PMOS threshold voltage magnitude at the nominal temperature.
    pub pmos_vth: Volts,
    /// NMOS transconductance parameter `β = µ_n C_ox W/L` of the SRAM access
    /// transistor (A/V²).
    pub nmos_beta: f64,
    /// PMOS transconductance parameter of the pre-charge devices (A/V²).
    pub pmos_beta: f64,
    /// Channel-length modulation coefficient λ (1/V).
    pub channel_length_modulation: f64,
    /// Subthreshold swing (V/decade), typically 80–100 mV/dec at 65 nm.
    pub subthreshold_swing: f64,
    /// Bit-line capacitance per attached cell (farads).
    pub bitline_cap_per_cell: Farads,
    /// Fixed bit-line wiring capacitance independent of the number of cells (farads).
    pub bitline_cap_fixed: Farads,
    /// Internal storage-node capacitance of one SRAM cell (farads).
    pub cell_node_cap: Farads,
    /// Nominal temperature at which `nmos_vth`/`nmos_beta` are specified.
    pub temperature_nominal: Celsius,
    /// Threshold-voltage temperature coefficient (V/°C, negative: Vth drops when hot).
    pub vth_temp_coefficient: f64,
    /// Mobility temperature exponent (`µ ∝ (T/T0)^-k`, with T in kelvin).
    pub mobility_temp_exponent: f64,
    /// One-sigma threshold-voltage mismatch of a minimum-size device (volts).
    pub sigma_vth_mismatch: Volts,
    /// One-sigma relative transconductance mismatch of a minimum-size device.
    pub sigma_beta_mismatch: f64,
}

impl Technology {
    /// A 65 nm-class technology tuned to reproduce the qualitative discharge
    /// behaviour of the paper's Figs. 4–5.
    ///
    /// # Example
    ///
    /// ```rust
    /// use optima_circuit::technology::Technology;
    /// let tech = Technology::tsmc65_like();
    /// assert_eq!(tech.vdd_nominal.0, 1.0);
    /// ```
    pub fn tsmc65_like() -> Self {
        Technology {
            name: "generic-65nm".to_string(),
            vdd_nominal: Volts(1.0),
            nmos_vth: Volts(0.45),
            pmos_vth: Volts(0.42),
            // ~100 µA/V² for the access device: discharges a ~45 fF bit-line
            // by a few hundred mV within 1–2 ns at V_WL = 0.8–1.0 V, matching
            // the nanosecond-scale curves of the paper's Fig. 4a.
            nmos_beta: 100e-6,
            pmos_beta: 60e-6,
            channel_length_modulation: 0.08,
            subthreshold_swing: 0.09,
            bitline_cap_per_cell: Farads(0.3e-15),
            bitline_cap_fixed: Farads(40e-15),
            cell_node_cap: Farads(0.8e-15),
            temperature_nominal: Celsius(25.0),
            // Threshold and mobility shifts largely compensate each other, so
            // temperature only has the minor effect shown in Fig. 5b.
            vth_temp_coefficient: -0.4e-3,
            mobility_temp_exponent: 0.7,
            sigma_vth_mismatch: Volts(0.005),
            sigma_beta_mismatch: 0.015,
        }
    }

    /// Effective NMOS threshold voltage under the given corner and temperature.
    pub fn nmos_vth_effective(&self, corner: ProcessCorner, temperature: Celsius) -> Volts {
        let delta_t = temperature.0 - self.temperature_nominal.0;
        Volts(self.nmos_vth.0 + corner.nmos_vth_shift() + self.vth_temp_coefficient * delta_t)
    }

    /// Effective NMOS transconductance under the given corner and temperature.
    pub fn nmos_beta_effective(&self, corner: ProcessCorner, temperature: Celsius) -> f64 {
        let t_kelvin = temperature.to_kelvin();
        let t_nominal_kelvin = self.temperature_nominal.to_kelvin();
        let mobility_scale = (t_kelvin / t_nominal_kelvin).powf(-self.mobility_temp_exponent);
        self.nmos_beta * corner.nmos_beta_scale() * mobility_scale
    }

    /// Total bit-line capacitance for a column with `cells` attached cells.
    pub fn bitline_capacitance(&self, cells: usize) -> Farads {
        Farads(self.bitline_cap_fixed.0 + self.bitline_cap_per_cell.0 * cells as f64)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::tsmc65_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_parameters_are_physical() {
        let tech = Technology::tsmc65_like();
        assert!(tech.nmos_vth.0 > 0.2 && tech.nmos_vth.0 < 0.7);
        assert!(tech.nmos_beta > 0.0);
        assert!(tech.bitline_capacitance(16).0 > tech.bitline_cap_fixed.0);
    }

    #[test]
    fn fast_corner_lowers_vth_and_raises_beta() {
        let tech = Technology::tsmc65_like();
        let t = tech.temperature_nominal;
        let vth_ff = tech.nmos_vth_effective(ProcessCorner::FastFast, t);
        let vth_ss = tech.nmos_vth_effective(ProcessCorner::SlowSlow, t);
        let vth_tt = tech.nmos_vth_effective(ProcessCorner::TypicalTypical, t);
        assert!(vth_ff.0 < vth_tt.0 && vth_tt.0 < vth_ss.0);
        assert!(
            tech.nmos_beta_effective(ProcessCorner::FastFast, t)
                > tech.nmos_beta_effective(ProcessCorner::SlowSlow, t)
        );
    }

    #[test]
    fn higher_temperature_lowers_vth_and_mobility() {
        let tech = Technology::tsmc65_like();
        let hot = Celsius(125.0);
        let cold = Celsius(-40.0);
        let corner = ProcessCorner::TypicalTypical;
        assert!(tech.nmos_vth_effective(corner, hot).0 < tech.nmos_vth_effective(corner, cold).0);
        assert!(
            tech.nmos_beta_effective(corner, hot) < tech.nmos_beta_effective(corner, cold),
            "mobility must degrade with temperature"
        );
    }

    #[test]
    fn nominal_temperature_reproduces_nominal_parameters() {
        let tech = Technology::tsmc65_like();
        let corner = ProcessCorner::TypicalTypical;
        let t = tech.temperature_nominal;
        assert!((tech.nmos_vth_effective(corner, t).0 - tech.nmos_vth.0).abs() < 1e-12);
        assert!((tech.nmos_beta_effective(corner, t) - tech.nmos_beta).abs() < 1e-12);
    }

    #[test]
    fn corner_display_and_all() {
        assert_eq!(ProcessCorner::FastFast.to_string(), "FF");
        assert_eq!(ProcessCorner::default(), ProcessCorner::TypicalTypical);
        assert_eq!(ProcessCorner::ALL.len(), 5);
    }

    #[test]
    fn bitline_capacitance_scales_with_cells() {
        let tech = Technology::tsmc65_like();
        let small = tech.bitline_capacitance(4);
        let large = tech.bitline_capacitance(256);
        assert!(large.0 > small.0);
        let expected = tech.bitline_cap_fixed.0 + 256.0 * tech.bitline_cap_per_cell.0;
        assert!((large.0 - expected).abs() < 1e-24);
    }
}
