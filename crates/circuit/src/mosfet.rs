//! MOSFET drain-current model.
//!
//! A square-law model with channel-length modulation and an exponential
//! subthreshold region.  This is deliberately a *behavioural* device model —
//! the point of the golden reference is not SPICE-level accuracy but a
//! physically plausible nonlinear system that exhibits the paper's error
//! sources: the quadratic `I(V_GS)` relationship (Fig. 4b), the
//! saturation→linear transition (Eq. 2) and the residual subthreshold
//! discharge for `V_WL < Vth` (Fig. 4a).

use crate::montecarlo::MismatchSample;
use crate::pvt::PvtConditions;
use crate::technology::Technology;
use optima_math::units::{Amperes, Volts};
use serde::{Deserialize, Serialize};

/// Polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetKind {
    /// N-channel device (pull-down / access transistors of the 6T cell).
    Nmos,
    /// P-channel device (pre-charge transistors, pull-ups of the cell).
    Pmos,
}

/// Operating region of a MOSFET at a given bias point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingRegion {
    /// `V_GS` below threshold: only subthreshold leakage flows.
    Subthreshold,
    /// `V_DS < V_GS − Vth`: resistive (triode) operation.
    Linear,
    /// `V_DS ≥ V_GS − Vth`: current saturates (apart from λ·V_DS).
    Saturation,
}

/// An individual MOSFET instance with per-device mismatch applied.
///
/// # Example
///
/// ```rust
/// use optima_circuit::prelude::*;
///
/// let tech = Technology::tsmc65_like();
/// let pvt = PvtConditions::nominal(&tech);
/// let fet = Mosfet::new(MosfetKind::Nmos, &tech, &pvt, &MismatchSample::none());
/// let strong = fet.drain_current(Volts(1.0), Volts(1.0));
/// let weak = fet.drain_current(Volts(0.3), Volts(1.0));
/// assert!(strong.0 > 100.0 * weak.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    kind: MosfetKind,
    threshold: Volts,
    beta: f64,
    lambda: f64,
    subthreshold_swing: f64,
}

impl Mosfet {
    /// Creates a device for the given technology, operating point and mismatch sample.
    pub fn new(
        kind: MosfetKind,
        tech: &Technology,
        pvt: &PvtConditions,
        mismatch: &MismatchSample,
    ) -> Self {
        let (threshold, beta) = match kind {
            MosfetKind::Nmos => {
                let vth = tech.nmos_vth_effective(pvt.corner, pvt.temperature);
                let beta = tech.nmos_beta_effective(pvt.corner, pvt.temperature);
                (
                    Volts(vth.0 + mismatch.delta_vth.0),
                    beta * (1.0 + mismatch.delta_beta_rel),
                )
            }
            MosfetKind::Pmos => {
                // PMOS devices only participate in pre-charge; corner handling
                // mirrors the NMOS path with the PMOS parameters.
                let delta_t = pvt.temperature.0 - tech.temperature_nominal.0;
                let vth = tech.pmos_vth.0 + tech.vth_temp_coefficient * delta_t;
                (
                    Volts(vth + mismatch.delta_vth.0),
                    tech.pmos_beta * (1.0 + mismatch.delta_beta_rel),
                )
            }
        };
        Mosfet {
            kind,
            threshold,
            beta,
            lambda: tech.channel_length_modulation,
            subthreshold_swing: tech.subthreshold_swing,
        }
    }

    /// The device polarity.
    pub fn kind(&self) -> MosfetKind {
        self.kind
    }

    /// Effective threshold voltage (including corner, temperature and mismatch).
    pub fn threshold(&self) -> Volts {
        self.threshold
    }

    /// Effective transconductance parameter (A/V²).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Operating region at the given gate-source / drain-source bias.
    ///
    /// Both voltages are interpreted in the device's own polarity (i.e. pass
    /// positive magnitudes for a PMOS as well).
    pub fn region(&self, v_gs: Volts, v_ds: Volts) -> OperatingRegion {
        let overdrive = v_gs.0 - self.threshold.0;
        if overdrive <= 0.0 {
            OperatingRegion::Subthreshold
        } else if v_ds.0 < overdrive {
            OperatingRegion::Linear
        } else {
            OperatingRegion::Saturation
        }
    }

    /// Drain current at the given bias (both voltages as positive magnitudes).
    ///
    /// The three regions are stitched continuously:
    /// * subthreshold: `I0 · exp(overdrive / n·kT-equivalent swing)`,
    /// * linear: `β · (overdrive − V_DS/2) · V_DS`,
    /// * saturation: `β/2 · overdrive² · (1 + λ·V_DS)`.
    pub fn drain_current(&self, v_gs: Volts, v_ds: Volts) -> Amperes {
        let v_ds = v_ds.0.max(0.0);
        let overdrive = v_gs.0 - self.threshold.0;
        let current = if overdrive <= 0.0 {
            // Subthreshold: anchor the exponential at the current the
            // square-law predicts for a small positive overdrive so the two
            // regions join continuously.
            let anchor_overdrive = 0.02;
            let anchor = 0.5 * self.beta * anchor_overdrive * anchor_overdrive;
            let decades = (overdrive - anchor_overdrive) / self.subthreshold_swing;
            let sat = anchor * 10f64.powf(decades);
            // Drain-source saturation of the exponential for very small V_DS.
            sat * (1.0 - (-v_ds / 0.026).exp())
        } else if v_ds < overdrive {
            self.beta * (overdrive - 0.5 * v_ds) * v_ds
        } else {
            // Channel-length modulation referenced to the saturation point so
            // the current is continuous across the linear/saturation boundary.
            0.5 * self.beta * overdrive * overdrive * (1.0 + self.lambda * (v_ds - overdrive))
        };
        Amperes(current.max(0.0))
    }

    /// Saturation drain current for the given overdrive voltage (ignoring λ).
    pub fn saturation_current(&self, v_gs: Volts) -> Amperes {
        let overdrive = (v_gs.0 - self.threshold.0).max(0.0);
        Amperes(0.5 * self.beta * overdrive * overdrive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvt::PvtConditions;

    fn nominal_nmos() -> Mosfet {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        Mosfet::new(MosfetKind::Nmos, &tech, &pvt, &MismatchSample::none())
    }

    #[test]
    fn regions_are_classified_correctly() {
        let fet = nominal_nmos();
        assert_eq!(
            fet.region(Volts(0.3), Volts(1.0)),
            OperatingRegion::Subthreshold
        );
        assert_eq!(fet.region(Volts(1.0), Volts(0.1)), OperatingRegion::Linear);
        assert_eq!(
            fet.region(Volts(1.0), Volts(1.0)),
            OperatingRegion::Saturation
        );
    }

    #[test]
    fn current_increases_quadratically_with_overdrive() {
        let fet = nominal_nmos();
        let i1 = fet.drain_current(Volts(0.65), Volts(1.0)).0; // overdrive 0.2
        let i2 = fet.drain_current(Volts(0.85), Volts(1.0)).0; // overdrive 0.4
        let ratio = i2 / i1;
        assert!(
            ratio > 3.5 && ratio < 4.6,
            "expected roughly quadratic scaling, got ratio {ratio}"
        );
    }

    #[test]
    fn subthreshold_current_is_small_but_nonzero() {
        let fet = nominal_nmos();
        let sub = fet.drain_current(Volts(0.3), Volts(1.0)).0;
        let strong = fet.drain_current(Volts(1.0), Volts(1.0)).0;
        assert!(sub > 0.0, "subthreshold leakage must be nonzero");
        assert!(sub < strong * 1e-2, "subthreshold must be orders smaller");
    }

    #[test]
    fn linear_region_reduces_current() {
        let fet = nominal_nmos();
        let sat = fet.drain_current(Volts(1.0), Volts(0.8)).0;
        let lin = fet.drain_current(Volts(1.0), Volts(0.1)).0;
        assert!(lin < sat, "linear-region current must be below saturation");
    }

    #[test]
    fn current_is_continuous_at_region_boundaries() {
        let fet = nominal_nmos();
        // Across the linear/saturation boundary.
        let overdrive = 1.0 - fet.threshold().0;
        let below = fet.drain_current(Volts(1.0), Volts(overdrive - 1e-6)).0;
        let above = fet.drain_current(Volts(1.0), Volts(overdrive + 1e-6)).0;
        assert!((below - above).abs() / above < 1e-3);
        // Across the threshold.
        let just_below = fet
            .drain_current(Volts(fet.threshold().0 - 1e-4), Volts(1.0))
            .0;
        let just_above = fet
            .drain_current(Volts(fet.threshold().0 + 0.02), Volts(1.0))
            .0;
        assert!(just_below < just_above);
        assert!(just_above / just_below < 10.0);
    }

    #[test]
    fn zero_vds_gives_zero_current() {
        let fet = nominal_nmos();
        assert_eq!(fet.drain_current(Volts(1.0), Volts(0.0)).0, 0.0);
        assert!(fet.drain_current(Volts(0.2), Volts(0.0)).0 < 1e-15);
    }

    #[test]
    fn mismatch_shifts_current() {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        let slow = Mosfet::new(
            MosfetKind::Nmos,
            &tech,
            &pvt,
            &MismatchSample {
                delta_vth: Volts(0.03),
                delta_beta_rel: -0.05,
            },
        );
        let nominal = nominal_nmos();
        assert!(
            slow.drain_current(Volts(0.8), Volts(1.0)).0
                < nominal.drain_current(Volts(0.8), Volts(1.0)).0
        );
    }

    #[test]
    fn pmos_device_constructs_and_conducts() {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        let fet = Mosfet::new(MosfetKind::Pmos, &tech, &pvt, &MismatchSample::none());
        assert_eq!(fet.kind(), MosfetKind::Pmos);
        assert!(fet.drain_current(Volts(1.0), Volts(0.5)).0 > 0.0);
    }

    #[test]
    fn saturation_current_matches_square_law() {
        let fet = nominal_nmos();
        let overdrive: f64 = 0.35;
        let expected = 0.5 * fet.beta() * overdrive.powi(2);
        let got = fet
            .saturation_current(Volts(fet.threshold().0 + overdrive))
            .0;
        assert!((got - expected).abs() / expected < 1e-12);
    }
}
