//! Bit-line model: capacitance, pre-charge and charge bookkeeping.
//!
//! In the discharge-based computing scheme both bit-lines are pre-charged to
//! VDD before every operation (Fig. 3 of the paper); computation then pulls
//! charge off BLB through the accessed cell.  The energy cost of the scheme
//! is dominated by replacing that charge during the next pre-charge phase,
//! which is what [`BitLine::precharge_energy`] accounts for.

use crate::error::CircuitError;
use crate::technology::Technology;
use optima_math::units::{Farads, Joules, Volts};
use serde::{Deserialize, Serialize};

/// A single bit-line (or bit-line-bar) of an SRAM column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitLine {
    capacitance: Farads,
    voltage: Volts,
}

impl BitLine {
    /// Creates a bit-line for a column with `cells` attached cells, initially
    /// pre-charged to `vdd`.
    pub fn for_column(tech: &Technology, cells: usize, vdd: Volts) -> Self {
        BitLine {
            capacitance: tech.bitline_capacitance(cells),
            voltage: vdd,
        }
    }

    /// Creates a bit-line with an explicit capacitance, pre-charged to `vdd`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidOperatingPoint`] for non-positive capacitance.
    pub fn new(capacitance: Farads, vdd: Volts) -> Result<Self, CircuitError> {
        if capacitance.0 <= 0.0 || !capacitance.0.is_finite() {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!(
                    "bit-line capacitance must be positive, got {}",
                    capacitance.0
                ),
            });
        }
        Ok(BitLine {
            capacitance,
            voltage: vdd,
        })
    }

    /// Total capacitance of the bit-line.
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Present bit-line voltage.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Sets the bit-line voltage directly (used by the transient integrator).
    pub fn set_voltage(&mut self, voltage: Volts) {
        self.voltage = voltage;
    }

    /// Pre-charges the bit-line back to `vdd`, returning the energy drawn from
    /// the supply to do so: `E = C · VDD · ΔV`.
    pub fn precharge(&mut self, vdd: Volts) -> Joules {
        let delta = (vdd.0 - self.voltage.0).max(0.0);
        let energy = self.capacitance.0 * vdd.0 * delta;
        self.voltage = vdd;
        Joules(energy)
    }

    /// Energy the supply must deliver to restore the line from its current
    /// voltage to `vdd`, without changing the state.
    pub fn precharge_energy(&self, vdd: Volts) -> Joules {
        let delta = (vdd.0 - self.voltage.0).max(0.0);
        Joules(self.capacitance.0 * vdd.0 * delta)
    }

    /// Removes `charge` coulombs from the bit-line (discharge through a cell),
    /// lowering its voltage by `charge / C`, clamped at 0 V.
    pub fn remove_charge(&mut self, charge: f64) {
        let delta_v = charge / self.capacitance.0;
        self.voltage = Volts((self.voltage.0 - delta_v).max(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_bitline_uses_technology_capacitance() {
        let tech = Technology::tsmc65_like();
        let bl = BitLine::for_column(&tech, 16, Volts(1.0));
        assert_eq!(bl.capacitance(), tech.bitline_capacitance(16));
        assert_eq!(bl.voltage(), Volts(1.0));
    }

    #[test]
    fn invalid_capacitance_is_rejected() {
        assert!(BitLine::new(Farads(0.0), Volts(1.0)).is_err());
        assert!(BitLine::new(Farads(-1e-15), Volts(1.0)).is_err());
        assert!(BitLine::new(Farads(f64::NAN), Volts(1.0)).is_err());
    }

    #[test]
    fn precharge_energy_matches_c_vdd_dv() {
        let mut bl = BitLine::new(Farads(20e-15), Volts(1.0)).unwrap();
        bl.set_voltage(Volts(0.7));
        let expected = 20e-15 * 1.0 * 0.3;
        assert!((bl.precharge_energy(Volts(1.0)).0 - expected).abs() < 1e-20);
        let drawn = bl.precharge(Volts(1.0));
        assert!((drawn.0 - expected).abs() < 1e-20);
        assert_eq!(bl.voltage(), Volts(1.0));
        // A second pre-charge costs nothing.
        assert_eq!(bl.precharge(Volts(1.0)).0, 0.0);
    }

    #[test]
    fn remove_charge_lowers_voltage_and_clamps_at_zero() {
        let mut bl = BitLine::new(Farads(10e-15), Volts(1.0)).unwrap();
        bl.remove_charge(2e-15);
        assert!((bl.voltage().0 - 0.8).abs() < 1e-12);
        bl.remove_charge(1.0); // absurdly large charge
        assert_eq!(bl.voltage().0, 0.0);
    }

    #[test]
    fn precharge_to_lower_vdd_never_returns_negative_energy() {
        let bl = BitLine::new(Farads(10e-15), Volts(1.0)).unwrap();
        assert_eq!(bl.precharge_energy(Volts(0.9)).0, 0.0);
    }
}
