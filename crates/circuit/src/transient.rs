//! Transient (time-domain) simulation of the bit-line discharge.
//!
//! This is the *golden reference*: the bit-line node equation
//! `C_BL · dV_BLB/dt = −I_cell(V_WL, V_BLB)` is integrated with a fine-grained
//! Runge–Kutta scheme, exactly the kind of differential-equation solving the
//! paper describes as accurate but slow.  The OPTIMA behavioural models in
//! `optima-core` are calibrated against and evaluated against the waveforms
//! produced here, and the paper's speed-up claim is measured as the runtime
//! ratio between this simulator and the fitted models.

use crate::bitline::BitLine;
use crate::energy::EnergyReport;
use crate::error::CircuitError;
use crate::montecarlo::MismatchSample;
use crate::pvt::PvtConditions;
use crate::sram::SramCell;
use crate::technology::Technology;
use crate::waveform::Waveform;
use optima_math::ode;
use optima_math::units::{Seconds, Volts};
use serde::{Deserialize, Serialize};

/// Stimulus description for a single-cell discharge experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DischargeStimulus {
    /// Analog word-line voltage applied during the discharge phase.
    pub word_line_voltage: Volts,
    /// Data bit stored in the accessed cell ('1' discharges BLB).
    pub stored_bit: bool,
    /// Duration of the discharge phase.
    pub duration: Seconds,
    /// Number of cells attached to the bit-line (sets its capacitance).
    pub cells_on_bitline: usize,
    /// Number of integration steps of the fixed-step reference solver.
    pub time_steps: usize,
}

impl Default for DischargeStimulus {
    fn default() -> Self {
        DischargeStimulus {
            word_line_voltage: Volts(1.0),
            stored_bit: true,
            duration: Seconds(2e-9),
            cells_on_bitline: 16,
            time_steps: 400,
        }
    }
}

/// The golden-reference transient simulator.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_circuit::CircuitError> {
/// use optima_circuit::prelude::*;
///
/// let tech = Technology::tsmc65_like();
/// let sim = TransientSimulator::new(tech.clone());
/// let pvt = PvtConditions::nominal(&tech);
/// let wf = sim.discharge_waveform(&DischargeStimulus::default(), &pvt, &MismatchSample::none())?;
/// assert!(wf.final_value() < wf.initial_value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSimulator {
    technology: Technology,
}

impl TransientSimulator {
    /// Creates a simulator for the given technology.
    pub fn new(technology: Technology) -> Self {
        TransientSimulator { technology }
    }

    /// The technology the simulator was built for.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Simulates the BLB voltage over time for one discharge operation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidOperatingPoint`] for non-physical
    /// stimulus parameters (non-positive duration, zero steps, V_WL outside
    /// `[0, 1.5·VDD]`) and propagates numeric failures of the integrator.
    pub fn discharge_waveform(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        mismatch: &MismatchSample,
    ) -> Result<Waveform, CircuitError> {
        self.validate(stimulus, pvt)?;
        let cell = SramCell::new(stimulus.stored_bit, &self.technology, pvt, mismatch);
        let capacitance = self
            .technology
            .bitline_capacitance(stimulus.cells_on_bitline)
            .0;
        let v_wl = stimulus.word_line_voltage;

        let solution = ode::rk4(
            |_t, state, derivative| {
                let v_blb = Volts(state[0].max(0.0));
                let current = cell.discharge_current(v_wl, v_blb).0;
                derivative[0] = -current / capacitance;
            },
            &[pvt.vdd.0],
            0.0,
            stimulus.duration.0,
            stimulus.time_steps,
        )?;

        let times = solution.times();
        let values = solution.component(0);
        Waveform::from_samples(times, values)
    }

    /// Convenience wrapper returning only the discharge `ΔV_BL` observed at
    /// the end of the stimulus (initial voltage − final voltage).
    ///
    /// # Errors
    ///
    /// Same as [`TransientSimulator::discharge_waveform`].
    pub fn discharge_delta(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        mismatch: &MismatchSample,
    ) -> Result<Volts, CircuitError> {
        let waveform = self.discharge_waveform(stimulus, pvt, mismatch)?;
        Ok(Volts(waveform.initial_value() - waveform.final_value()))
    }

    /// Simulates one full operation (write + pre-charge + discharge) and
    /// returns its energy breakdown.
    ///
    /// # Errors
    ///
    /// Same as [`TransientSimulator::discharge_waveform`].
    pub fn operation_energy(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
        mismatch: &MismatchSample,
    ) -> Result<EnergyReport, CircuitError> {
        let waveform = self.discharge_waveform(stimulus, pvt, mismatch)?;
        let mut bitline = BitLine::for_column(&self.technology, stimulus.cells_on_bitline, pvt.vdd);
        bitline.set_voltage(Volts(waveform.final_value()));
        let precharge = bitline.precharge(pvt.vdd);
        Ok(EnergyReport::for_operation(
            &self.technology,
            pvt,
            stimulus.cells_on_bitline,
            precharge,
        ))
    }

    fn validate(
        &self,
        stimulus: &DischargeStimulus,
        pvt: &PvtConditions,
    ) -> Result<(), CircuitError> {
        if stimulus.duration.0 <= 0.0 || !stimulus.duration.0.is_finite() {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!(
                    "discharge duration must be positive, got {}",
                    stimulus.duration.0
                ),
            });
        }
        if stimulus.time_steps == 0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "time_steps must be non-zero".to_string(),
            });
        }
        if stimulus.cells_on_bitline == 0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "a bit-line needs at least one attached cell".to_string(),
            });
        }
        let v_wl = stimulus.word_line_voltage.0;
        if v_wl < 0.0 || v_wl > 1.5 * pvt.vdd.0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!("word-line voltage {v_wl} outside [0, {}]", 1.5 * pvt.vdd.0),
            });
        }
        if pvt.vdd.0 <= 0.0 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "supply voltage must be positive".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::ProcessCorner;
    use optima_math::units::Celsius;

    fn sim() -> (TransientSimulator, PvtConditions) {
        let tech = Technology::tsmc65_like();
        let pvt = PvtConditions::nominal(&tech);
        (TransientSimulator::new(tech), pvt)
    }

    #[test]
    fn stored_zero_keeps_bitline_at_vdd() {
        let (sim, pvt) = sim();
        let stimulus = DischargeStimulus {
            stored_bit: false,
            ..DischargeStimulus::default()
        };
        let wf = sim
            .discharge_waveform(&stimulus, &pvt, &MismatchSample::none())
            .unwrap();
        assert!(wf.swing() < 1e-9, "a '0' cell must not discharge BLB");
    }

    #[test]
    fn discharge_grows_with_word_line_voltage() {
        // The monotone V_WL dependency of Fig. 4b.
        let (sim, pvt) = sim();
        let mut previous = 0.0;
        for v_wl in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let stimulus = DischargeStimulus {
                word_line_voltage: Volts(v_wl),
                duration: Seconds(0.5e-9),
                ..DischargeStimulus::default()
            };
            let delta = sim
                .discharge_delta(&stimulus, &pvt, &MismatchSample::none())
                .unwrap()
                .0;
            assert!(delta > previous, "ΔV must grow with V_WL");
            previous = delta;
        }
    }

    #[test]
    fn discharge_is_nonlinear_in_word_line_voltage() {
        // Quadratic device current ⇒ doubling the overdrive should much more
        // than double the discharge (Section III-1).
        let (sim, pvt) = sim();
        let delta = |v_wl: f64| {
            sim.discharge_delta(
                &DischargeStimulus {
                    word_line_voltage: Volts(v_wl),
                    duration: Seconds(0.4e-9),
                    ..DischargeStimulus::default()
                },
                &pvt,
                &MismatchSample::none(),
            )
            .unwrap()
            .0
        };
        let low = delta(0.65); // overdrive 0.2
        let high = delta(0.85); // overdrive 0.4
        assert!(high > 2.5 * low, "nonlinearity missing: {low} vs {high}");
    }

    #[test]
    fn sub_threshold_word_line_produces_small_discharge() {
        let (sim, pvt) = sim();
        let stimulus = DischargeStimulus {
            word_line_voltage: Volts(0.3),
            ..DischargeStimulus::default()
        };
        let delta = sim
            .discharge_delta(&stimulus, &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        assert!(delta > 0.0, "subthreshold leakage discharge expected");
        assert!(delta < 0.05, "subthreshold discharge must stay small");
    }

    #[test]
    fn discharge_saturates_towards_linear_region() {
        // Over a long window the discharge rate slows once V_BLB < V_WL − Vth
        // (Fig. 4a dotted saturation curves).
        let (sim, pvt) = sim();
        let stimulus = DischargeStimulus {
            word_line_voltage: Volts(1.0),
            duration: Seconds(4e-9),
            time_steps: 800,
            ..DischargeStimulus::default()
        };
        let wf = sim
            .discharge_waveform(&stimulus, &pvt, &MismatchSample::none())
            .unwrap();
        let early_rate = wf.values()[0] - wf.sample_at(Seconds(0.5e-9)).unwrap().0;
        let late_start = wf.sample_at(Seconds(3.0e-9)).unwrap().0;
        let late_rate = late_start - wf.sample_at(Seconds(3.5e-9)).unwrap().0;
        assert!(
            late_rate < early_rate * 0.8,
            "discharge should slow down late: early {early_rate}, late {late_rate}"
        );
    }

    #[test]
    fn supply_voltage_shifts_the_whole_curve() {
        let (sim, _) = sim();
        let tech = Technology::tsmc65_like();
        let wf_low = sim
            .discharge_waveform(
                &DischargeStimulus::default(),
                &PvtConditions::nominal(&tech).with_vdd(Volts(0.9)),
                &MismatchSample::none(),
            )
            .unwrap();
        let wf_high = sim
            .discharge_waveform(
                &DischargeStimulus::default(),
                &PvtConditions::nominal(&tech).with_vdd(Volts(1.1)),
                &MismatchSample::none(),
            )
            .unwrap();
        assert!((wf_low.initial_value() - 0.9).abs() < 1e-9);
        assert!((wf_high.initial_value() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn process_corners_order_the_discharge() {
        let (sim, pvt) = sim();
        let delta_for = |corner| {
            sim.discharge_delta(
                &DischargeStimulus {
                    word_line_voltage: Volts(0.8),
                    duration: Seconds(0.5e-9),
                    ..DischargeStimulus::default()
                },
                &pvt.with_corner(corner),
                &MismatchSample::none(),
            )
            .unwrap()
            .0
        };
        let fast = delta_for(ProcessCorner::FastFast);
        let typical = delta_for(ProcessCorner::TypicalTypical);
        let slow = delta_for(ProcessCorner::SlowSlow);
        assert!(fast > typical && typical > slow);
    }

    #[test]
    fn temperature_effect_is_minor_compared_to_vdd_effect() {
        // Fig. 5: temperature barely moves the discharge, supply voltage moves it a lot.
        let (sim, pvt) = sim();
        let stim = DischargeStimulus {
            word_line_voltage: Volts(0.8),
            duration: Seconds(0.5e-9),
            ..DischargeStimulus::default()
        };
        let nominal = sim
            .discharge_waveform(&stim, &pvt, &MismatchSample::none())
            .unwrap();
        let hot = sim
            .discharge_waveform(
                &stim,
                &pvt.with_temperature(Celsius(125.0)),
                &MismatchSample::none(),
            )
            .unwrap();
        let high_vdd = sim
            .discharge_waveform(&stim, &pvt.with_vdd(Volts(1.1)), &MismatchSample::none())
            .unwrap();
        // The supply shift moves the entire V_BL(t) curve (Fig. 5a), while the
        // temperature shift only perturbs it slightly (Fig. 5b).
        let temp_shift = (hot.final_value() - nominal.final_value()).abs();
        let vdd_shift = (high_vdd.final_value() - nominal.final_value()).abs();
        assert!(
            temp_shift < nominal.swing() * 0.25,
            "temperature effect too large: {temp_shift}"
        );
        assert!(
            vdd_shift > temp_shift,
            "VDD must matter more than temperature"
        );
    }

    #[test]
    fn mismatch_changes_the_discharge() {
        let (sim, pvt) = sim();
        let stim = DischargeStimulus {
            word_line_voltage: Volts(0.8),
            duration: Seconds(0.5e-9),
            ..DischargeStimulus::default()
        };
        let nominal = sim
            .discharge_delta(&stim, &pvt, &MismatchSample::none())
            .unwrap()
            .0;
        let slow_device = sim
            .discharge_delta(
                &stim,
                &pvt,
                &MismatchSample {
                    delta_vth: Volts(0.02),
                    delta_beta_rel: -0.04,
                },
            )
            .unwrap()
            .0;
        assert!(slow_device < nominal);
    }

    #[test]
    fn invalid_stimuli_are_rejected() {
        let (sim, pvt) = sim();
        let bad_duration = DischargeStimulus {
            duration: Seconds(0.0),
            ..DischargeStimulus::default()
        };
        assert!(sim
            .discharge_waveform(&bad_duration, &pvt, &MismatchSample::none())
            .is_err());
        let bad_steps = DischargeStimulus {
            time_steps: 0,
            ..DischargeStimulus::default()
        };
        assert!(sim
            .discharge_waveform(&bad_steps, &pvt, &MismatchSample::none())
            .is_err());
        let bad_vwl = DischargeStimulus {
            word_line_voltage: Volts(2.0),
            ..DischargeStimulus::default()
        };
        assert!(sim
            .discharge_waveform(&bad_vwl, &pvt, &MismatchSample::none())
            .is_err());
        let bad_cells = DischargeStimulus {
            cells_on_bitline: 0,
            ..DischargeStimulus::default()
        };
        assert!(sim
            .discharge_waveform(&bad_cells, &pvt, &MismatchSample::none())
            .is_err());
    }

    #[test]
    fn operation_energy_is_positive_and_scales_with_discharge() {
        let (sim, pvt) = sim();
        let small = sim
            .operation_energy(
                &DischargeStimulus {
                    word_line_voltage: Volts(0.55),
                    ..DischargeStimulus::default()
                },
                &pvt,
                &MismatchSample::none(),
            )
            .unwrap();
        let large = sim
            .operation_energy(
                &DischargeStimulus {
                    word_line_voltage: Volts(1.0),
                    ..DischargeStimulus::default()
                },
                &pvt,
                &MismatchSample::none(),
            )
            .unwrap();
        assert!(small.total().0 > 0.0);
        assert!(large.discharge.0 > small.discharge.0);
    }
}
