//! Sampled analog waveforms.
//!
//! Transient simulations produce `(time, voltage)` series; the calibration
//! pipeline samples them at the ADC sampling instants and the figure
//! harnesses print them directly.

use crate::error::CircuitError;
use optima_math::interp;
use optima_math::units::{Seconds, Volts};
use serde::{Deserialize, Serialize};

/// A uniformly or non-uniformly sampled voltage waveform.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_circuit::CircuitError> {
/// use optima_circuit::waveform::Waveform;
/// use optima_math::units::{Seconds, Volts};
///
/// let wf = Waveform::from_samples(vec![0.0, 1e-9, 2e-9], vec![1.0, 0.8, 0.6])?;
/// assert_eq!(wf.sample_at(Seconds(0.5e-9))?, Volts(0.9));
/// assert_eq!(wf.final_value(), 0.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from raw time/value vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidOperatingPoint`] when the vectors have
    /// different lengths, fewer than two samples, or non-monotonic times.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self, CircuitError> {
        if times.len() != values.len() {
            return Err(CircuitError::InvalidOperatingPoint {
                context: format!(
                    "waveform time/value length mismatch: {} vs {}",
                    times.len(),
                    values.len()
                ),
            });
        }
        if times.len() < 2 {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "waveform needs at least two samples".to_string(),
            });
        }
        if times.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "waveform times must be strictly increasing".to_string(),
            });
        }
        Ok(Waveform { times, values })
    }

    /// Sample times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values in volts.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the waveform holds no samples (only possible for
    /// `Waveform::default()`).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Initial value of the waveform.
    ///
    /// # Panics
    ///
    /// Panics on an empty (default-constructed) waveform.
    pub fn initial_value(&self) -> f64 {
        self.values[0]
    }

    /// Final value of the waveform.
    ///
    /// # Panics
    ///
    /// Panics on an empty (default-constructed) waveform.
    pub fn final_value(&self) -> f64 {
        // optima-lint: allow(R3) -- the panic is part of the documented contract above
        *self.values.last().expect("waveform has samples")
    }

    /// Minimum value over the whole waveform.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Total downward swing (initial − minimum).
    pub fn swing(&self) -> f64 {
        self.initial_value() - self.min_value()
    }

    /// Linearly interpolated value at time `t` (clamped to the waveform span).
    ///
    /// # Errors
    ///
    /// Returns an error only for default-constructed, empty waveforms.
    pub fn sample_at(&self, t: Seconds) -> Result<Volts, CircuitError> {
        let v = interp::linear(&self.times, &self.values, t.0)?;
        Ok(Volts(v))
    }

    /// First time at which the waveform crosses below `threshold`, if any.
    pub fn time_crossing_below(&self, threshold: Volts) -> Option<Seconds> {
        for window in 0..self.times.len().saturating_sub(1) {
            let (v0, v1) = (self.values[window], self.values[window + 1]);
            if v0 >= threshold.0 && v1 < threshold.0 {
                let (t0, t1) = (self.times[window], self.times[window + 1]);
                let frac = (v0 - threshold.0) / (v0 - v1);
                return Some(Seconds(t0 + frac * (t1 - t0)));
            }
        }
        None
    }

    /// Pointwise difference `self − other`, resampling `other` onto this
    /// waveform's time base.
    ///
    /// # Errors
    ///
    /// Propagates interpolation errors from degenerate waveforms.
    pub fn subtract(&self, other: &Waveform) -> Result<Vec<f64>, CircuitError> {
        self.times
            .iter()
            .zip(self.values.iter())
            .map(|(&t, &v)| {
                let o = other.sample_at(Seconds(t))?;
                Ok(v - o.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 0.8, 0.5, 0.4]).unwrap()
    }

    #[test]
    fn construction_validates_input() {
        assert!(Waveform::from_samples(vec![0.0], vec![1.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Waveform::from_samples(vec![1.0, 0.5], vec![1.0, 1.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 1.0], vec![1.0, 0.9]).is_ok());
    }

    #[test]
    fn basic_accessors() {
        let wf = ramp();
        assert_eq!(wf.len(), 4);
        assert!(!wf.is_empty());
        assert_eq!(wf.initial_value(), 1.0);
        assert_eq!(wf.final_value(), 0.4);
        assert_eq!(wf.min_value(), 0.4);
        assert!((wf.swing() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sampling_interpolates_and_clamps() {
        let wf = ramp();
        assert!((wf.sample_at(Seconds(0.5)).unwrap().0 - 0.9).abs() < 1e-12);
        assert_eq!(wf.sample_at(Seconds(-1.0)).unwrap().0, 1.0);
        assert_eq!(wf.sample_at(Seconds(10.0)).unwrap().0, 0.4);
    }

    #[test]
    fn threshold_crossing_detection() {
        let wf = ramp();
        let t = wf.time_crossing_below(Volts(0.65)).unwrap();
        assert!((t.0 - 1.5).abs() < 1e-12);
        assert!(wf.time_crossing_below(Volts(0.1)).is_none());
    }

    #[test]
    fn subtract_resamples_other_waveform() {
        let a = ramp();
        let b = Waveform::from_samples(vec![0.0, 3.0], vec![1.0, 0.4]).unwrap();
        let diff = a.subtract(&b).unwrap();
        assert_eq!(diff.len(), 4);
        assert!(diff[0].abs() < 1e-12);
        assert!(diff[3].abs() < 1e-12);
    }
}
