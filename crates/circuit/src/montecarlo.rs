//! Transistor-mismatch Monte Carlo sampling.
//!
//! Local (random) process variation is modeled as independent Gaussian
//! perturbations of the access-transistor threshold voltage and
//! transconductance.  Fig. 5d of the paper shows 1000 such samples; the
//! mismatch model of OPTIMA (Eq. 6) is fitted against exactly this kind of
//! sweep.

use crate::technology::Technology;
use optima_math::distributions::Gaussian;
use optima_math::units::Volts;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One sampled mismatch realisation applied to a device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MismatchSample {
    /// Threshold-voltage deviation of the device.
    pub delta_vth: Volts,
    /// Relative transconductance deviation (`Δβ / β`).
    pub delta_beta_rel: f64,
}

impl MismatchSample {
    /// The mismatch-free (nominal) sample.
    pub fn none() -> Self {
        MismatchSample::default()
    }

    /// Returns `true` if both deviations are exactly zero.
    pub fn is_nominal(&self) -> bool {
        self.delta_vth.0 == 0.0 && self.delta_beta_rel == 0.0
    }
}

/// Gaussian mismatch model of a technology.
///
/// # Example
///
/// ```rust
/// use optima_circuit::prelude::*;
///
/// let tech = Technology::tsmc65_like();
/// let model = MismatchModel::from_technology(&tech);
/// let samples = model.sample_n(1000, 42);
/// assert_eq!(samples.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MismatchModel {
    vth_sigma: Volts,
    beta_sigma_rel: f64,
}

impl MismatchModel {
    /// Builds the mismatch model from a technology's matching figures.
    pub fn from_technology(tech: &Technology) -> Self {
        MismatchModel {
            vth_sigma: tech.sigma_vth_mismatch,
            beta_sigma_rel: tech.sigma_beta_mismatch,
        }
    }

    /// Creates a model with explicit sigmas.
    ///
    /// # Panics
    ///
    /// Panics if either sigma is negative.
    pub fn new(vth_sigma: Volts, beta_sigma_rel: f64) -> Self {
        assert!(vth_sigma.0 >= 0.0, "vth sigma must be non-negative");
        assert!(beta_sigma_rel >= 0.0, "beta sigma must be non-negative");
        MismatchModel {
            vth_sigma,
            beta_sigma_rel,
        }
    }

    /// One-sigma threshold-voltage mismatch.
    pub fn vth_sigma(&self) -> Volts {
        self.vth_sigma
    }

    /// One-sigma relative transconductance mismatch.
    pub fn beta_sigma_rel(&self) -> f64 {
        self.beta_sigma_rel
    }

    /// Draws a single mismatch sample from the provided RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MismatchSample {
        let vth_dist = Gaussian::new(0.0, self.vth_sigma.0);
        let beta_dist = Gaussian::new(0.0, self.beta_sigma_rel);
        MismatchSample {
            delta_vth: Volts(vth_dist.sample(rng)),
            // Clamp so that beta never becomes negative even in extreme tails.
            delta_beta_rel: beta_dist.sample(rng).max(-0.9),
        }
    }

    /// Draws `n` samples from a deterministic, seeded RNG.
    pub fn sample_n(&self, n: usize, seed: u64) -> Vec<MismatchSample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optima_math::stats;

    #[test]
    fn nominal_sample_is_zero() {
        assert!(MismatchSample::none().is_nominal());
        assert!(!MismatchSample {
            delta_vth: Volts(0.01),
            delta_beta_rel: 0.0
        }
        .is_nominal());
    }

    #[test]
    fn sample_statistics_match_model_sigmas() {
        let tech = Technology::tsmc65_like();
        let model = MismatchModel::from_technology(&tech);
        let samples = model.sample_n(20_000, 7);
        let vths: Vec<f64> = samples.iter().map(|s| s.delta_vth.0).collect();
        let betas: Vec<f64> = samples.iter().map(|s| s.delta_beta_rel).collect();
        assert!((stats::mean(&vths)).abs() < 1e-3);
        assert!((stats::std_dev(&vths) - model.vth_sigma().0).abs() < 0.1 * model.vth_sigma().0);
        assert!(
            (stats::std_dev(&betas) - model.beta_sigma_rel()).abs() < 0.1 * model.beta_sigma_rel()
        );
    }

    #[test]
    fn sampling_is_reproducible_for_equal_seeds() {
        let model = MismatchModel::new(Volts(0.01), 0.02);
        assert_eq!(model.sample_n(16, 3), model.sample_n(16, 3));
        assert_ne!(model.sample_n(16, 3), model.sample_n(16, 4));
    }

    #[test]
    fn beta_deviation_never_reaches_minus_one() {
        let model = MismatchModel::new(Volts(0.0), 5.0);
        let samples = model.sample_n(5000, 11);
        assert!(samples.iter().all(|s| s.delta_beta_rel > -1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_is_rejected() {
        let _ = MismatchModel::new(Volts(-0.01), 0.0);
    }
}
