//! Word-line digital-to-analog converter (DAC).
//!
//! The multi-bit multiplication scheme of the paper (Section II-B, idea 1)
//! quantises the word-line voltage with a DAC: the input operand selects one
//! of `2^bits` word-line voltages between `V_DAC,0` (code 0) and `V_DAC,FS`
//! (full-scale code).  Two of the three design-space parameters explored in
//! Section V are exactly these two voltages.

use crate::error::CircuitError;
use optima_math::units::Volts;
use serde::{Deserialize, Serialize};

/// Transfer-curve shape of the DAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DacTransfer {
    /// Conventional linear DAC (the paper's default).
    #[default]
    Linear,
    /// Square-root pre-distorted DAC that linearises the quadratic
    /// device current, as proposed in ref. [15] of the paper (AID).  Included
    /// for the ablation study.
    SquareRootPredistortion,
}

/// A behavioural word-line DAC.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_circuit::CircuitError> {
/// use optima_circuit::dac::Dac;
/// use optima_math::units::Volts;
///
/// let dac = Dac::new(4, Volts(0.3), Volts(1.0))?;
/// assert_eq!(dac.output(0)?, Volts(0.3));
/// assert_eq!(dac.output(15)?, Volts(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    bits: u8,
    zero_voltage: Volts,
    full_scale_voltage: Volts,
    transfer: DacTransfer,
    /// Relative supply-voltage sensitivity of the output (1.0 = fully
    /// supply-referred, 0.0 = ideal bandgap reference).
    supply_sensitivity: f64,
}

impl Dac {
    /// Creates a linear DAC with the given resolution and output range.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConverterConfig`] when `bits` is zero or
    /// above 8, or when the zero-code voltage is not below the full-scale voltage.
    pub fn new(
        bits: u8,
        zero_voltage: Volts,
        full_scale_voltage: Volts,
    ) -> Result<Self, CircuitError> {
        if bits == 0 || bits > 8 {
            return Err(CircuitError::InvalidConverterConfig {
                context: format!("dac resolution {bits} bits outside supported range 1..=8"),
            });
        }
        if zero_voltage.0 >= full_scale_voltage.0 {
            return Err(CircuitError::InvalidConverterConfig {
                context: format!(
                    "dac zero voltage {} must be below full-scale {}",
                    zero_voltage.0, full_scale_voltage.0
                ),
            });
        }
        if zero_voltage.0 < 0.0 {
            return Err(CircuitError::InvalidConverterConfig {
                context: "dac zero voltage must be non-negative".to_string(),
            });
        }
        Ok(Dac {
            bits,
            zero_voltage,
            full_scale_voltage,
            transfer: DacTransfer::Linear,
            supply_sensitivity: 0.35,
        })
    }

    /// Switches the DAC to the given transfer curve (builder style).
    pub fn with_transfer(mut self, transfer: DacTransfer) -> Self {
        self.transfer = transfer;
        self
    }

    /// Sets the relative supply-voltage sensitivity (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is outside `[0, 1]`.
    pub fn with_supply_sensitivity(mut self, sensitivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sensitivity),
            "supply sensitivity must be within [0, 1]"
        );
        self.supply_sensitivity = sensitivity;
        self
    }

    /// DAC resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Output voltage for code 0.
    pub fn zero_voltage(&self) -> Volts {
        self.zero_voltage
    }

    /// Output voltage for the full-scale code.
    pub fn full_scale_voltage(&self) -> Volts {
        self.full_scale_voltage
    }

    /// Largest representable code.
    pub fn max_code(&self) -> u16 {
        (1u16 << self.bits) - 1
    }

    /// Nominal output voltage for `code`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConverterConfig`] when `code` exceeds the
    /// DAC resolution.
    pub fn output(&self, code: u16) -> Result<Volts, CircuitError> {
        if code > self.max_code() {
            return Err(CircuitError::InvalidConverterConfig {
                context: format!("code {code} exceeds {}-bit dac range", self.bits),
            });
        }
        let normalized = code as f64 / self.max_code() as f64;
        let shaped = match self.transfer {
            DacTransfer::Linear => normalized,
            DacTransfer::SquareRootPredistortion => normalized.sqrt(),
        };
        Ok(Volts(
            self.zero_voltage.0 + shaped * (self.full_scale_voltage.0 - self.zero_voltage.0),
        ))
    }

    /// Output voltage for `code` under a non-nominal supply voltage.
    ///
    /// The paper notes that supply-voltage changes "do not only affect the
    /// SRAM circuit, but also the thresholds of ADCs and DACs": a fraction of
    /// the relative supply error (set by the supply sensitivity) appears as a
    /// multiplicative error on the DAC output.
    ///
    /// # Errors
    ///
    /// Same as [`Dac::output`].
    pub fn output_with_supply(
        &self,
        code: u16,
        vdd: Volts,
        vdd_nominal: Volts,
    ) -> Result<Volts, CircuitError> {
        let nominal = self.output(code)?;
        let relative_error = (vdd.0 - vdd_nominal.0) / vdd_nominal.0;
        Ok(Volts(
            nominal.0 * (1.0 + self.supply_sensitivity * relative_error),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_dac_endpoints_and_midpoint() {
        let dac = Dac::new(4, Volts(0.4), Volts(1.0)).unwrap();
        assert_eq!(dac.output(0).unwrap(), Volts(0.4));
        assert_eq!(dac.output(15).unwrap(), Volts(1.0));
        let mid = dac.output(8).unwrap().0;
        assert!((mid - (0.4 + 8.0 / 15.0 * 0.6)).abs() < 1e-12);
        assert_eq!(dac.max_code(), 15);
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(Dac::new(0, Volts(0.3), Volts(1.0)).is_err());
        assert!(Dac::new(9, Volts(0.3), Volts(1.0)).is_err());
        assert!(Dac::new(4, Volts(1.0), Volts(0.3)).is_err());
        assert!(Dac::new(4, Volts(-0.1), Volts(1.0)).is_err());
    }

    #[test]
    fn out_of_range_code_is_rejected() {
        let dac = Dac::new(4, Volts(0.3), Volts(1.0)).unwrap();
        assert!(dac.output(16).is_err());
        assert!(dac.output(15).is_ok());
    }

    #[test]
    fn sqrt_predistortion_raises_mid_codes() {
        let linear = Dac::new(4, Volts(0.3), Volts(1.0)).unwrap();
        let nonlinear = linear.with_transfer(DacTransfer::SquareRootPredistortion);
        // Endpoints are unchanged, intermediate codes are pushed up.
        assert_eq!(nonlinear.output(0).unwrap(), linear.output(0).unwrap());
        assert_eq!(nonlinear.output(15).unwrap(), linear.output(15).unwrap());
        assert!(nonlinear.output(4).unwrap().0 > linear.output(4).unwrap().0);
    }

    #[test]
    fn supply_sensitivity_shifts_output() {
        let dac = Dac::new(4, Volts(0.3), Volts(1.0)).unwrap();
        let nominal = dac
            .output_with_supply(10, Volts(1.0), Volts(1.0))
            .unwrap()
            .0;
        let high = dac
            .output_with_supply(10, Volts(1.1), Volts(1.0))
            .unwrap()
            .0;
        let low = dac
            .output_with_supply(10, Volts(0.9), Volts(1.0))
            .unwrap()
            .0;
        assert!(high > nominal && low < nominal);
        // Sensitivity below 1.0 attenuates the error.
        assert!((high - nominal) < nominal * 0.1);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_supply_sensitivity_panics() {
        let _ = Dac::new(4, Volts(0.3), Volts(1.0))
            .unwrap()
            .with_supply_sensitivity(1.5);
    }
}
