//! Error type for the circuit-level simulator.

use optima_math::MathError;
use std::fmt;

/// Error returned by circuit-level simulation routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A voltage, time or other physical quantity was outside its valid range.
    InvalidOperatingPoint {
        /// Human-readable description of the violated constraint.
        context: String,
    },
    /// An SRAM array was addressed outside its dimensions.
    AddressOutOfRange {
        /// The requested index.
        index: usize,
        /// The number of valid entries.
        size: usize,
    },
    /// A two-dimensional array access (e.g. into a defect map) was outside
    /// the array geometry.  Carries the full coordinate so a failure deep in
    /// a sweep names the exact cell instead of a flat index.
    CellOutOfRange {
        /// Requested row.
        row: u16,
        /// Requested (physical) column.
        column: u16,
        /// Number of valid rows.
        rows: u16,
        /// Number of valid (physical) columns.
        columns: u16,
    },
    /// The underlying numeric routine failed.
    Numeric(MathError),
    /// A converter (DAC/ADC) was configured inconsistently.
    InvalidConverterConfig {
        /// Human-readable description of the inconsistency.
        context: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidOperatingPoint { context } => {
                write!(f, "invalid operating point: {context}")
            }
            CircuitError::AddressOutOfRange { index, size } => {
                write!(f, "address {index} out of range for size {size}")
            }
            CircuitError::CellOutOfRange {
                row,
                column,
                rows,
                columns,
            } => {
                write!(
                    f,
                    "array cell (row {row}, column {column}) out of range for a \
                     {rows}x{columns} array"
                )
            }
            CircuitError::Numeric(err) => write!(f, "numeric error: {err}"),
            CircuitError::InvalidConverterConfig { context } => {
                write!(f, "invalid converter configuration: {context}")
            }
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Numeric(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MathError> for CircuitError {
    fn from(err: MathError) -> Self {
        CircuitError::Numeric(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CircuitError::AddressOutOfRange { index: 7, size: 4 };
        assert_eq!(err.to_string(), "address 7 out of range for size 4");
        let err = CircuitError::CellOutOfRange {
            row: 16,
            column: 5,
            rows: 16,
            columns: 6,
        };
        assert_eq!(
            err.to_string(),
            "array cell (row 16, column 5) out of range for a 16x6 array"
        );
        let err = CircuitError::from(MathError::SingularMatrix);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }

    #[test]
    fn source_points_to_math_error() {
        use std::error::Error;
        let err = CircuitError::from(MathError::SingularMatrix);
        assert!(err.source().is_some());
        let err = CircuitError::InvalidOperatingPoint {
            context: "x".into(),
        };
        assert!(err.source().is_none());
    }
}
