//! Parametric geometry of a discharge-based compute array.
//!
//! The paper evaluates a single fixed macro: a 16-row SRAM array whose rows
//! hold one 4-bit word across 4 bit-line columns, multiplied against a 4-bit
//! DAC-driven word-line operand.  [`ArrayConfig`] lifts that hard-wired
//! geometry into data, the way an SRAM compiler generates whole macros from a
//! small parameter struct: operand width, physical rows and columns, the
//! analog slice width one pass of the array can handle, and the column-mux
//! ratio that amortises one converter over several columns.
//!
//! Operands wider than one analog slice (e.g. INT8 on a 4-bit array) are
//! composed digitally from `slices × slices` narrow passes with shift-add
//! accumulation; the config records both widths so every layer above —
//! multiplier, DSE, calibration snapshots, DNN product tables — can agree on
//! the same geometry.

use crate::error::CircuitError;
use serde::{Deserialize, Serialize};

/// Geometry of one compute array: logical operand width, per-pass analog
/// slice width, physical dimensions and column multiplexing.
///
/// The default value reproduces the paper's macro (16×4, INT4, no muxing)
/// exactly; [`ArrayConfig::int8`] is the widest preset the digital
/// composition supports.
///
/// # Example
///
/// ```rust
/// use optima_circuit::prelude::*;
///
/// let paper = ArrayConfig::default();
/// assert_eq!((paper.operand_bits, paper.rows, paper.columns), (4, 16, 4));
/// assert_eq!(paper.slices(), 1); // single-pass analog multiply
///
/// let int8 = ArrayConfig::int8();
/// assert_eq!(int8.operand_max(), 255);
/// assert_eq!(int8.slices(), 2); // 2×2 = 4 analog passes per product
/// int8.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Logical operand width in bits (1..=8; products must fit `u16`).
    pub operand_bits: u8,
    /// Analog slice width one array pass handles (1..=8, the DAC code width).
    ///
    /// Must divide `operand_bits`; when it is smaller, products are composed
    /// from `slices()²` passes with digital shift-add accumulation.
    pub slice_bits: u8,
    /// Cells per bit-line (array rows); sets the bit-line capacitance seen by
    /// every discharge and therefore flows into calibration.
    pub rows: u16,
    /// Physical bit-line columns per row; must hold whole slice words.
    pub columns: u16,
    /// Columns sharing one converter pair (1 = dedicated converters).
    ///
    /// The fixed converter overhead per multiply is amortised over the mux
    /// group.
    pub column_mux: u8,
    /// Replica (spare) bit-line columns available for redundancy remapping
    /// (0 = no redundancy, the paper's macro).
    ///
    /// Spares sit physically after the data columns; a defective data column
    /// can be swapped for a clean spare by the reliability layer
    /// (`optima_imc::reliability`).  With column muxing, spares must come in
    /// whole mux groups so a swapped-in spare still has a converter share.
    pub spare_columns: u16,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig::paper()
    }
}

impl ArrayConfig {
    /// The paper's macro: 16 rows × 4 columns, 4-bit operands, one pass,
    /// dedicated converters.
    pub fn paper() -> Self {
        ArrayConfig {
            operand_bits: 4,
            slice_bits: 4,
            rows: 16,
            columns: 4,
            column_mux: 1,
            spare_columns: 0,
        }
    }

    /// An INT8 geometry: 8-bit operands composed from 4-bit analog slices on
    /// a 16×8 array (each row holds both slices of one stored word).
    pub fn int8() -> Self {
        ArrayConfig {
            operand_bits: 8,
            slice_bits: 4,
            rows: 16,
            columns: 8,
            column_mux: 1,
            spare_columns: 0,
        }
    }

    /// Returns a copy with `spare_columns` replica columns (builder style).
    pub fn with_spares(mut self, spare_columns: u16) -> Self {
        self.spare_columns = spare_columns;
        self
    }

    /// Checks the geometry for internal consistency.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidConverterConfig`] describing the first violated
    /// constraint: operand/slice widths out of the 1..=8 range, a slice width
    /// that does not divide the operand width, an empty array, columns that
    /// cannot hold whole slice words (or the whole stored word), a mux ratio
    /// that does not divide the slice-word count evenly, more spares than
    /// data columns, or a spare count that does not fill whole mux groups.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let fail = |context: String| Err(CircuitError::InvalidConverterConfig { context });
        if self.operand_bits == 0 || self.operand_bits > 8 {
            return fail(format!(
                "operand width must be 1..=8 bits, got {}",
                self.operand_bits
            ));
        }
        if self.slice_bits == 0 || self.slice_bits > 8 {
            return fail(format!(
                "analog slice width must be 1..=8 bits (DAC limit), got {}",
                self.slice_bits
            ));
        }
        if !self.operand_bits.is_multiple_of(self.slice_bits) {
            return fail(format!(
                "slice width {} must divide the operand width {}",
                self.slice_bits, self.operand_bits
            ));
        }
        if self.rows == 0 {
            return fail("array needs at least one row".to_string());
        }
        if self.columns == 0 || !self.columns.is_multiple_of(self.slice_bits as u16) {
            return fail(format!(
                "columns ({}) must hold whole {}-bit slice words",
                self.columns, self.slice_bits
            ));
        }
        if self.column_mux == 0 {
            return fail("column-mux ratio must be at least 1".to_string());
        }
        let slice_words = self.columns / self.slice_bits as u16;
        if !slice_words.is_multiple_of(self.column_mux as u16) {
            return fail(format!(
                "mux ratio {} must divide the {} slice words per row evenly",
                self.column_mux, slice_words
            ));
        }
        if self.columns < self.operand_bits as u16 {
            return fail(format!(
                "a row must hold the whole stored word: {} columns cannot store {} operand bits",
                self.columns, self.operand_bits
            ));
        }
        if self.spare_columns > self.columns {
            return fail(format!(
                "spare columns ({}) cannot outnumber the {} data columns",
                self.spare_columns, self.columns
            ));
        }
        if self.column_mux > 1 && !self.spare_columns.is_multiple_of(self.column_mux as u16) {
            return fail(format!(
                "spare columns ({}) must come in whole mux groups of {}",
                self.spare_columns, self.column_mux
            ));
        }
        Ok(())
    }

    /// Physical bit-line columns per row including the spares,
    /// `columns + spare_columns`.
    pub fn physical_columns(&self) -> u16 {
        self.columns + self.spare_columns
    }

    /// Largest representable operand, `2^operand_bits − 1`.
    pub fn operand_max(&self) -> u16 {
        (1u32 << self.operand_bits) as u16 - 1
    }

    /// Largest exact product, `operand_max²` (fits `u16` up to 8-bit operands).
    pub fn product_max(&self) -> u16 {
        let max = self.operand_max() as u32;
        (max * max) as u16
    }

    /// Largest operand of one analog slice, `2^slice_bits − 1`.
    pub fn slice_max(&self) -> u16 {
        (1u32 << self.slice_bits) as u16 - 1
    }

    /// Number of slices per operand (`1` for a single-pass geometry).
    pub fn slices(&self) -> u8 {
        self.operand_bits / self.slice_bits
    }

    /// Number of analog passes per product, `slices²`.
    pub fn passes(&self) -> u16 {
        let s = self.slices() as u16;
        s * s
    }

    /// Number of points in the exhaustive input space, `(operand_max + 1)²`.
    pub fn input_space(&self) -> usize {
        let side = self.operand_max() as usize + 1;
        side * side
    }

    /// Length of a flat product lookup table over the input space,
    /// `1 << (2 · operand_bits)` (identical to [`Self::input_space`]).
    pub fn lut_len(&self) -> usize {
        1usize << (2 * self.operand_bits)
    }

    /// DAC code width of one analog pass.
    pub fn dac_bits(&self) -> u8 {
        self.slice_bits
    }

    /// ADC code width of one analog pass (covers one slice product).
    pub fn adc_bits(&self) -> u8 {
        2 * self.slice_bits
    }

    /// `true` for the paper's default geometry.
    pub fn is_paper(&self) -> bool {
        *self == ArrayConfig::paper()
    }

    /// Short human-readable description, e.g. `16x4 int4`,
    /// `16x8 int8 (4b slices, mux 2)` or `16x4 int4 +2sp`.
    ///
    /// Geometries without spares render exactly as before spares existed, so
    /// historical report output (and the CI greps pinned to it) is
    /// unaffected.
    pub fn describe(&self) -> String {
        let mut out = format!("{}x{} int{}", self.rows, self.columns, self.operand_bits);
        if self.slices() > 1 {
            out.push_str(&format!(" ({}b slices", self.slice_bits));
            if self.column_mux > 1 {
                out.push_str(&format!(", mux {}", self.column_mux));
            }
            out.push(')');
        } else if self.column_mux > 1 {
            out.push_str(&format!(" (mux {})", self.column_mux));
        }
        if self.spare_columns > 0 {
            out.push_str(&format!(" +{}sp", self.spare_columns));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_the_default_and_valid() {
        let config = ArrayConfig::default();
        assert!(config.is_paper());
        config.validate().unwrap();
        assert_eq!(config.operand_max(), 15);
        assert_eq!(config.product_max(), 225);
        assert_eq!(config.slices(), 1);
        assert_eq!(config.passes(), 1);
        assert_eq!(config.input_space(), 256);
        assert_eq!(config.lut_len(), 256);
        assert_eq!(config.dac_bits(), 4);
        assert_eq!(config.adc_bits(), 8);
        assert_eq!(config.describe(), "16x4 int4");
    }

    #[test]
    fn int8_preset_is_valid_and_composed() {
        let config = ArrayConfig::int8();
        config.validate().unwrap();
        assert!(!config.is_paper());
        assert_eq!(config.operand_max(), 255);
        assert_eq!(config.product_max(), 65025);
        assert_eq!(config.slices(), 2);
        assert_eq!(config.passes(), 4);
        assert_eq!(config.input_space(), 65536);
        assert_eq!(config.lut_len(), 65536);
        // Each pass still fits the physical converters.
        assert_eq!(config.dac_bits(), 4);
        assert_eq!(config.adc_bits(), 8);
        assert_eq!(config.describe(), "16x8 int8 (4b slices)");
    }

    #[test]
    fn invalid_geometries_are_rejected_with_context() {
        let cases = [
            (
                ArrayConfig {
                    operand_bits: 0,
                    ..ArrayConfig::paper()
                },
                "operand width",
            ),
            (
                ArrayConfig {
                    operand_bits: 9,
                    slice_bits: 9,
                    ..ArrayConfig::paper()
                },
                "operand width",
            ),
            (
                ArrayConfig {
                    operand_bits: 6,
                    slice_bits: 4,
                    ..ArrayConfig::paper()
                },
                "divide the operand width",
            ),
            (
                ArrayConfig {
                    rows: 0,
                    ..ArrayConfig::paper()
                },
                "at least one row",
            ),
            (
                ArrayConfig {
                    columns: 6,
                    ..ArrayConfig::paper()
                },
                "slice words",
            ),
            (
                ArrayConfig {
                    column_mux: 0,
                    ..ArrayConfig::paper()
                },
                "mux",
            ),
            (
                ArrayConfig {
                    columns: 8,
                    column_mux: 3,
                    ..ArrayConfig::paper()
                },
                "mux ratio 3",
            ),
        ];
        for (config, needle) in cases {
            let err = config.validate().unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{config:?}: {err} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn spare_columns_validate_against_mux_and_width() {
        // Plain spares on the paper macro are fine and show up in the
        // description (the spare-free description is unchanged).
        let spared = ArrayConfig::paper().with_spares(2);
        spared.validate().unwrap();
        assert_eq!(spared.physical_columns(), 6);
        assert_eq!(spared.describe(), "16x4 int4 +2sp");
        assert_eq!(ArrayConfig::paper().describe(), "16x4 int4");
        assert!(!spared.is_paper());

        // More spares than data columns is rejected with context.
        let err = ArrayConfig::paper().with_spares(5).validate().unwrap_err();
        assert!(err.to_string().contains("spare columns (5)"), "{err}");

        // With column muxing, spares must fill whole mux groups: a lone
        // spare has no converter share of its own.
        let muxed = ArrayConfig {
            columns: 8,
            column_mux: 2,
            ..ArrayConfig::paper()
        };
        assert!(muxed.with_spares(1).validate().is_err());
        let err = muxed.with_spares(3).validate().unwrap_err();
        assert!(err.to_string().contains("whole mux groups of 2"), "{err}");
        muxed.with_spares(2).validate().unwrap();
        muxed.with_spares(4).validate().unwrap();

        // Spares do not relax the data-column constraints: the data columns
        // alone must still hold the stored word (mirrors the CLI's
        // columns-auto-grow rule, which sizes `columns` to `operand_bits`
        // before spares are added on top).
        let narrow = ArrayConfig {
            operand_bits: 8,
            columns: 4,
            ..ArrayConfig::paper()
        };
        let err = narrow.validate().unwrap_err();
        assert!(err.to_string().contains("whole stored word"), "{err}");
        assert!(narrow.with_spares(4).validate().is_err());
        let grown = ArrayConfig {
            columns: 8,
            ..narrow
        };
        grown.with_spares(4).validate().unwrap();
    }

    #[test]
    fn mux_groups_show_up_in_the_description() {
        let config = ArrayConfig {
            columns: 8,
            column_mux: 2,
            ..ArrayConfig::paper()
        };
        config.validate().unwrap();
        assert_eq!(config.describe(), "16x8 int4 (mux 2)");
        let composed = ArrayConfig {
            column_mux: 2,
            ..ArrayConfig::int8()
        };
        composed.validate().unwrap();
        assert_eq!(composed.describe(), "16x8 int8 (4b slices, mux 2)");
    }
}
