//! Bit-line analog-to-digital converter (ADC).
//!
//! After the weighted discharge phases the combined bit-line voltage is
//! sampled and converted to a digital result.  The error metric of the design
//! space exploration (ϵ_mul) is expressed in LSBs of this converter, so its
//! quantisation behaviour directly defines the multiplier accuracy.

use crate::error::CircuitError;
use optima_math::units::Volts;
use serde::{Deserialize, Serialize};

/// A behavioural successive-approximation ADC.
///
/// The converter digitises the *discharge* `ΔV = V_precharge − V_BL`
/// over the range `[0, full_scale]` into `2^bits` codes.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), optima_circuit::CircuitError> {
/// use optima_circuit::adc::Adc;
/// use optima_math::units::Volts;
///
/// let adc = Adc::new(8, Volts(0.6))?;
/// assert_eq!(adc.quantize(Volts(0.0))?, 0);
/// assert_eq!(adc.quantize(Volts(0.6))?, 255);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u8,
    full_scale: Volts,
    /// Relative supply-voltage sensitivity of the conversion thresholds.
    supply_sensitivity: f64,
}

impl Adc {
    /// Creates an ADC with the given resolution and full-scale discharge range.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConverterConfig`] for a zero or >16-bit
    /// resolution or a non-positive full-scale range.
    pub fn new(bits: u8, full_scale: Volts) -> Result<Self, CircuitError> {
        if bits == 0 || bits > 16 {
            return Err(CircuitError::InvalidConverterConfig {
                context: format!("adc resolution {bits} bits outside supported range 1..=16"),
            });
        }
        if full_scale.0 <= 0.0 || !full_scale.0.is_finite() {
            return Err(CircuitError::InvalidConverterConfig {
                context: format!("adc full scale must be positive, got {}", full_scale.0),
            });
        }
        Ok(Adc {
            bits,
            full_scale,
            supply_sensitivity: 0.3,
        })
    }

    /// Sets the relative supply-voltage sensitivity (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is outside `[0, 1]`.
    pub fn with_supply_sensitivity(mut self, sensitivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sensitivity),
            "supply sensitivity must be within [0, 1]"
        );
        self.supply_sensitivity = sensitivity;
        self
    }

    /// ADC resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale discharge range.
    pub fn full_scale(&self) -> Volts {
        self.full_scale
    }

    /// Largest output code.
    pub fn max_code(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Voltage of one least-significant bit.
    pub fn lsb(&self) -> Volts {
        Volts(self.full_scale.0 / (self.max_code() as f64 + 1.0))
    }

    /// Quantises a discharge voltage into a digital code (round-to-nearest,
    /// clamped to the code range).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidOperatingPoint`] for a non-finite input.
    pub fn quantize(&self, discharge: Volts) -> Result<u32, CircuitError> {
        if !discharge.0.is_finite() {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "adc input voltage must be finite".to_string(),
            });
        }
        let normalized = (discharge.0 / self.full_scale.0).clamp(0.0, 1.0);
        let code = (normalized * self.max_code() as f64).round() as u32;
        Ok(code.min(self.max_code()))
    }

    /// Quantises under a non-nominal supply voltage: the conversion reference
    /// tracks the supply with the configured sensitivity, scaling the
    /// effective full-scale range.
    ///
    /// # Errors
    ///
    /// Same as [`Adc::quantize`].
    pub fn quantize_with_supply(
        &self,
        discharge: Volts,
        vdd: Volts,
        vdd_nominal: Volts,
    ) -> Result<u32, CircuitError> {
        let relative_error = (vdd.0 - vdd_nominal.0) / vdd_nominal.0;
        let effective_full_scale =
            self.full_scale.0 * (1.0 + self.supply_sensitivity * relative_error);
        if !discharge.0.is_finite() {
            return Err(CircuitError::InvalidOperatingPoint {
                context: "adc input voltage must be finite".to_string(),
            });
        }
        let normalized = (discharge.0 / effective_full_scale).clamp(0.0, 1.0);
        let code = (normalized * self.max_code() as f64).round() as u32;
        Ok(code.min(self.max_code()))
    }

    /// Converts a voltage into fractional LSBs (no rounding), useful for
    /// expressing analog error levels in LSB units as the paper does.
    pub fn voltage_to_lsb(&self, voltage: Volts) -> f64 {
        voltage.0 / self.lsb().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(Adc::new(0, Volts(0.5)).is_err());
        assert!(Adc::new(17, Volts(0.5)).is_err());
        assert!(Adc::new(8, Volts(0.0)).is_err());
        assert!(Adc::new(8, Volts(-0.5)).is_err());
        assert!(Adc::new(8, Volts(f64::NAN)).is_err());
    }

    #[test]
    fn quantization_endpoints_and_clamping() {
        let adc = Adc::new(4, Volts(0.5)).unwrap();
        assert_eq!(adc.quantize(Volts(0.0)).unwrap(), 0);
        assert_eq!(adc.quantize(Volts(0.5)).unwrap(), 15);
        assert_eq!(adc.quantize(Volts(1.5)).unwrap(), 15);
        assert_eq!(adc.quantize(Volts(-0.2)).unwrap(), 0);
        assert!(adc.quantize(Volts(f64::NAN)).is_err());
    }

    #[test]
    fn lsb_size_matches_full_scale_over_levels() {
        let adc = Adc::new(8, Volts(0.64)).unwrap();
        assert!((adc.lsb().0 - 0.64 / 256.0).abs() < 1e-12);
        assert!((adc.voltage_to_lsb(Volts(0.01)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantization_is_monotone() {
        let adc = Adc::new(6, Volts(0.6)).unwrap();
        let mut last = 0;
        for i in 0..=60 {
            let v = Volts(0.01 * i as f64);
            let code = adc.quantize(v).unwrap();
            assert!(code >= last, "codes must be non-decreasing");
            last = code;
        }
        assert_eq!(last, adc.max_code());
    }

    #[test]
    fn supply_variation_shifts_codes() {
        let adc = Adc::new(8, Volts(0.5)).unwrap();
        let nominal = adc
            .quantize_with_supply(Volts(0.25), Volts(1.0), Volts(1.0))
            .unwrap();
        let high_vdd = adc
            .quantize_with_supply(Volts(0.25), Volts(1.1), Volts(1.0))
            .unwrap();
        // Larger reference at high supply ⇒ same voltage maps to a smaller code.
        assert!(high_vdd <= nominal);
        assert!(nominal - high_vdd < 10);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_supply_sensitivity_panics() {
        let _ = Adc::new(8, Volts(0.5))
            .unwrap()
            .with_supply_sensitivity(2.0);
    }
}
