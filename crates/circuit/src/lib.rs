//! Golden-reference analog simulator for discharge-based in-SRAM computing.
//!
//! The OPTIMA paper fits its behavioural models against transient circuit
//! simulations of a TSMC 65 nm technology (Cadence Virtuoso).  Neither the
//! foundry models nor the commercial simulator are available, so this crate
//! implements the closest open equivalent from scratch:
//!
//! * [`technology`] — a 65 nm-class CMOS technology description with process
//!   corners and temperature dependence,
//! * [`mosfet`] — a square-law + subthreshold MOSFET current model,
//! * [`sram`] — the 6T SRAM cell and cell arrays (Fig. 2 of the paper),
//! * [`bitline`] — bit-line capacitance, pre-charge and discharge wiring,
//! * [`transient`] — ODE-based transient simulation of the bit-line discharge
//!   (the *slow but accurate* reference OPTIMA is benchmarked against),
//! * [`pvt`] — process/voltage/temperature operating points and sweeps
//!   (Fig. 5),
//! * [`defects`] — per-cell defect maps (stuck-at cells, open/shorted
//!   bit-lines, retention drift) and lifetime aging trajectories,
//! * [`montecarlo`] — transistor mismatch sampling (Fig. 5d),
//! * [`energy`] — write/pre-charge/discharge energy accounting (Eqs. 7–8
//!   reference data),
//! * [`dac`] / [`adc`] — circuit-level data converters used by the 4-bit
//!   multiplier case study,
//! * [`waveform`] — sampled analog waveforms.
//!
//! The transistor parameters are chosen so that the nominal bit-line
//! discharge reproduces the qualitative behaviour of the paper's Figs. 4–5:
//! VDD = 1.0 V, Vth ≈ 0.45 V, nanosecond-scale discharge, saturation-to-linear
//! bend once the bit-line drops below `V_WL − Vth`, weak subthreshold
//! discharge for `V_WL < Vth`, and clearly visible VDD/process/mismatch
//! sensitivity with only minor temperature sensitivity.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), optima_circuit::CircuitError> {
//! use optima_circuit::prelude::*;
//!
//! let tech = Technology::tsmc65_like();
//! let pvt = PvtConditions::nominal(&tech);
//! let sim = TransientSimulator::new(tech);
//! let stimulus = DischargeStimulus {
//!     word_line_voltage: Volts(0.8),
//!     stored_bit: true,
//!     duration: Seconds(2e-9),
//!     ..DischargeStimulus::default()
//! };
//! let waveform = sim.discharge_waveform(&stimulus, &pvt, &MismatchSample::none())?;
//! assert!(waveform.final_value() < 1.0); // the bit-line discharged
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod array;
pub mod bitline;
pub mod dac;
pub mod defects;
pub mod energy;
pub mod error;
pub mod montecarlo;
pub mod mosfet;
pub mod pvt;
pub mod sense;
pub mod sram;
pub mod technology;
pub mod transient;
pub mod waveform;

pub use error::CircuitError;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::adc::Adc;
    pub use crate::array::ArrayConfig;
    pub use crate::bitline::BitLine;
    pub use crate::dac::Dac;
    pub use crate::defects::{
        BitLineFault, CellDefect, DefectCounts, DefectMap, DefectModel, LifetimePoint,
        LifetimeTrajectory,
    };
    pub use crate::energy::EnergyReport;
    pub use crate::error::CircuitError;
    pub use crate::montecarlo::{MismatchModel, MismatchSample};
    pub use crate::mosfet::{Mosfet, MosfetKind};
    pub use crate::pvt::{PvtConditions, PvtSweep};
    pub use crate::sram::{SramArray, SramCell};
    pub use crate::technology::{ProcessCorner, Technology};
    pub use crate::transient::{DischargeStimulus, TransientSimulator};
    pub use crate::waveform::Waveform;
    pub use optima_math::units::{Celsius, FemtoJoules, Joules, NanoSeconds, Seconds, Volts};
}
