//! End-to-end equivalence and error-propagation tests for the engine.
//!
//! The headline acceptance property: serving a request through the queue →
//! coalescer → shard pool pipeline produces logits **bit-identical** to a
//! lone `predict_with` call, at every shard count (1..=8) and under
//! different batch policies.

use optima_dnn::error::DnnError;
use optima_dnn::eval::BatchInferenceModel;
use optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;
use optima_serve::{
    BatchPolicy, LoadPattern, Plan, ServeConfig, ServeError, ServiceModel, ServingEngine, ShardPool,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn small_cnn() -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    Network::new(vec![
        Box::new(Conv2d::new(1, 4, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(4 * 4 * 4, 3, &mut rng)),
    ])
}

fn image_pool(count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Tensor::from_vec(
                &[1, 8, 8],
                (0..64).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
            )
            .unwrap()
        })
        .collect()
}

fn serve_config(max_batch: usize, max_delay_us: u64, shards: usize) -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_batch,
            max_delay_us,
        },
        shards,
        queue_capacity: 256,
        service: ServiceModel::default(),
    }
}

#[test]
fn served_logits_are_bit_identical_to_single_request_calls_at_any_shard_count() {
    let network = small_cnn();
    let quantized = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    let images = image_pool(12, 5);
    let pattern = LoadPattern::OpenLoop {
        rate_per_sec: 2000.0,
        requests: 64,
    };
    for (max_batch, max_delay_us) in [(1, 0), (4, 300), (8, 1500)] {
        for shards in 1..=8 {
            let mut engine =
                ServingEngine::new(serve_config(max_batch, max_delay_us, shards)).unwrap();
            engine.run(&pattern, 42, &images, &quantized).unwrap();
            let plan = engine.last_plan().unwrap();
            assert_eq!(plan.rejected(), 0);
            for request in 0..plan.requests().len() {
                let image = plan.requests()[request].image;
                let mut scratch = KernelScratch::new();
                let expected = quantized
                    .forward_with(&images[image], &mut scratch)
                    .unwrap();
                assert_eq!(
                    expected,
                    engine.logits(request).unwrap(),
                    "policy ({max_batch}, {max_delay_us}), {shards} shards, request {request}"
                );
            }
        }
    }
}

#[test]
fn float_path_serves_bit_identical_logits_too() {
    let network = small_cnn();
    let images = image_pool(6, 9);
    let pattern = LoadPattern::ClosedLoop {
        clients: 4,
        think_us: 200,
        requests: 40,
    };
    for shards in [1, 3] {
        let mut engine = ServingEngine::new(serve_config(4, 400, shards)).unwrap();
        engine.run(&pattern, 7, &images, &network).unwrap();
        let plan = engine.last_plan().unwrap();
        for request in 0..plan.requests().len() {
            let Some(served) = engine.logits(request) else {
                continue;
            };
            let image = plan.requests()[request].image;
            let mut scratch = KernelScratch::new();
            let expected = network.infer_with(&images[image], &mut scratch).unwrap();
            assert_eq!(expected, served, "{shards} shards, request {request}");
        }
        let stats = engine.wall_stats().unwrap();
        assert_eq!(stats.latency.count() as usize, plan.served());
        assert!(stats.throughput_per_sec > 0.0);
    }
}

#[test]
fn wall_stats_merge_matches_the_per_shard_histograms() {
    let network = small_cnn();
    let images = image_pool(8, 11);
    let pattern = LoadPattern::OpenLoop {
        rate_per_sec: 3000.0,
        requests: 48,
    };
    let mut engine = ServingEngine::new(serve_config(4, 250, 4)).unwrap();
    engine.run(&pattern, 3, &images, &network).unwrap();
    let stats = engine.wall_stats().unwrap();
    let per_shard_total: u64 = stats.per_shard.iter().map(|h| h.count()).sum();
    assert_eq!(stats.latency.count(), per_shard_total);
    assert!(stats.latency.max_us() >= stats.latency.p50());
    // The virtual timeline reports the same served population.
    let plan = engine.last_plan().unwrap();
    assert_eq!(plan.virtual_latency().count() as usize, plan.served());
}

/// A model that panics on every request (drives the shard-panic path).
struct PanickingModel;

impl BatchInferenceModel for PanickingModel {
    fn predict(&self, _image: &Tensor) -> Result<Tensor, DnnError> {
        panic!("injected failure");
    }
}

#[test]
fn a_panicking_shard_surfaces_as_a_typed_error() {
    let images = image_pool(4, 13);
    let config = serve_config(2, 100, 2);
    let pattern = LoadPattern::OpenLoop {
        rate_per_sec: 1000.0,
        requests: 8,
    };
    let plan = Plan::build(&config, &pattern, 1, images.len()).unwrap();
    let mut pool = ShardPool::new(2).unwrap();
    match pool.execute(&plan, &images, &PanickingModel) {
        Err(ServeError::ShardPanicked { shard }) => assert!(shard < 2),
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
}

#[test]
fn an_inference_error_names_the_failing_request() {
    let network = small_cnn();
    // One malformed image in the pool: requests that draw it must fail.
    let mut images = image_pool(4, 17);
    images[2] = Tensor::zeros(&[2, 8, 8]);
    let config = serve_config(4, 200, 1);
    let pattern = LoadPattern::OpenLoop {
        rate_per_sec: 1000.0,
        requests: 16,
    };
    let plan = Plan::build(&config, &pattern, 1, images.len()).unwrap();
    let failing: Vec<u64> = plan
        .requests()
        .iter()
        .filter(|r| r.image == 2)
        .map(|r| r.id)
        .collect();
    assert!(!failing.is_empty(), "no request drew the malformed image");
    let mut pool = ShardPool::new(1).unwrap();
    match pool.execute(&plan, &images, &network) {
        Err(ServeError::RequestFailed { request, source }) => {
            assert!(failing.contains(&request));
            assert!(matches!(source, DnnError::ShapeMismatch { .. }));
        }
        other => panic!("expected RequestFailed, got {other:?}"),
    }
}

#[test]
fn mismatched_pool_or_image_count_is_rejected() {
    let images = image_pool(4, 19);
    let config = serve_config(2, 100, 2);
    let pattern = LoadPattern::OpenLoop {
        rate_per_sec: 1000.0,
        requests: 4,
    };
    let plan = Plan::build(&config, &pattern, 1, images.len()).unwrap();
    let network = small_cnn();
    // Wrong shard count.
    let mut pool = ShardPool::new(3).unwrap();
    assert!(matches!(
        pool.execute(&plan, &images, &network),
        Err(ServeError::InvalidConfig { .. })
    ));
    // Wrong image-pool size.
    let mut pool = ShardPool::new(2).unwrap();
    assert!(matches!(
        pool.execute(&plan, &images[..3], &network),
        Err(ServeError::InvalidConfig { .. })
    ));
}
