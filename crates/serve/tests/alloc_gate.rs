//! Allocation-count regression gate for the serving steady state.
//!
//! The same thread-local counting `#[global_allocator]` technique as the
//! DNN crate's `alloc_gate`: once the shard pool has warmed up (scratch
//! arenas at their high-water mark, output slabs sized, weight panels
//! packed), replaying a burst of planned requests performs **zero** heap
//! allocations.  The pool runs single-shard so the whole burst executes
//! inline on this thread, where the TLS counter sees every allocation
//! (worker threads would count against their own counters — and spawning
//! them allocates on the spawner).

use optima_dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use optima_dnn::multiplier::ExactInt4Products;
use optima_dnn::network::Network;
use optima_dnn::quantized::QuantizedNetwork;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;
use optima_serve::{BatchPolicy, LoadPattern, Plan, ServeConfig, ServiceModel, ShardPool};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    // `Cell<u64>` has no destructor, so touching it from inside the
    // allocator cannot recurse through TLS teardown.
    static ALLOCATION_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocations per thread.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATION_COUNT.with(|count| count.get())
}

fn small_cnn() -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    Network::new(vec![
        Box::new(Conv2d::new(1, 4, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(4 * 4 * 4, 3, &mut rng)),
    ])
}

fn image_pool(count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Tensor::from_vec(
                &[1, 8, 8],
                (0..64).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect(),
            )
            .unwrap()
        })
        .collect()
}

fn burst_plan(shards: usize, requests: usize, images: usize) -> Plan {
    let config = ServeConfig {
        policy: BatchPolicy {
            max_batch: 8,
            max_delay_us: 400,
        },
        shards,
        queue_capacity: requests,
        service: ServiceModel::default(),
    };
    let pattern = LoadPattern::OpenLoop {
        rate_per_sec: 4000.0,
        requests,
    };
    Plan::build(&config, &pattern, 42, images).unwrap()
}

#[test]
fn warm_shard_pool_burst_performs_zero_allocations() {
    let network = small_cnn();
    let quantized = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    assert!(quantized.uses_snapshot());
    let images = image_pool(8, 3);
    let plan = burst_plan(1, 96, images.len());
    assert_eq!(plan.rejected(), 0);
    let mut pool = ShardPool::new(1).unwrap();
    // Warm-up: sizes the output slab, grows the scratch arena to the
    // high-water mark and packs the weight panels.
    pool.execute(&plan, &images, &quantized).unwrap();
    pool.execute(&plan, &images, &quantized).unwrap();

    let before = allocations();
    pool.execute(&plan, &images, &quantized).unwrap();
    assert_eq!(
        allocations(),
        before,
        "a warm single-shard burst of {} requests must not allocate",
        plan.served()
    );
    // The results are still live and correct after the zero-alloc burst.
    let mut scratch = KernelScratch::new();
    let first_image = plan.requests()[0].image;
    let expected = quantized
        .forward_with(&images[first_image], &mut scratch)
        .unwrap();
    assert_eq!(expected, pool.logits(&plan, 0).unwrap());
}

#[test]
fn warm_batch_entry_points_perform_zero_allocations() {
    // The dnn-level batch entry the serving path builds on: a warm
    // `forward_batch_with` / `infer_batch_with` burst over recycled
    // outputs allocates nothing.
    let network = small_cnn();
    let quantized = QuantizedNetwork::from_network(&network, Arc::new(ExactInt4Products)).unwrap();
    let images = image_pool(16, 5);
    let refs: Vec<&Tensor> = images.iter().collect();
    let mut scratch = KernelScratch::new();
    let mut outputs = Vec::new();
    quantized
        .forward_batch_with(&refs, &mut outputs, &mut scratch)
        .unwrap();
    let before = allocations();
    quantized
        .forward_batch_with(&refs, &mut outputs, &mut scratch)
        .unwrap();
    assert_eq!(allocations(), before, "warm forward_batch_with allocated");

    let mut float_scratch = KernelScratch::new();
    let mut float_outputs = Vec::new();
    network
        .infer_batch_with(&refs, &mut float_outputs, &mut float_scratch)
        .unwrap();
    let before = allocations();
    network
        .infer_batch_with(&refs, &mut float_outputs, &mut float_scratch)
        .unwrap();
    assert_eq!(allocations(), before, "warm infer_batch_with allocated");
}
