//! Virtual-clock property tests for the batch coalescer (proptest).
//!
//! Over randomized policies, rates and loads, every plan must satisfy the
//! coalescer contract:
//!
//! * every admitted request is served exactly once (rejected ones never);
//! * no batch exceeds `max_batch`;
//! * no request waits past `max_delay_us` for its batch to close;
//! * with enough queue capacity, batch composition — and therefore which
//!   image every request maps to — is invariant to the shard count
//!   (1..=8).

use optima_serve::load::LoadPattern;
use optima_serve::plan::{Plan, ServeConfig};
use optima_serve::policy::{BatchPolicy, ServiceModel};
use proptest::prelude::*;

fn config(max_batch: usize, max_delay_us: u64, shards: usize, capacity: usize) -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_batch,
            max_delay_us,
        },
        shards,
        queue_capacity: capacity,
        service: ServiceModel {
            batch_overhead_us: 25,
            per_image_us: 35,
        },
    }
}

/// Checks the per-plan invariants and returns the number of served
/// requests.
fn check_plan_invariants(plan: &Plan) -> usize {
    let policy = plan.config().policy;
    let mut served_times = vec![0usize; plan.requests().len()];
    for (batch_index, batch) in plan.batches().iter().enumerate() {
        let members = plan.batch_members(batch_index);
        assert!(!members.is_empty(), "batch {batch_index} is empty");
        assert!(
            members.len() <= policy.max_batch,
            "batch {batch_index} holds {} members > max_batch {}",
            members.len(),
            policy.max_batch
        );
        assert_eq!(batch.members, members.len());
        assert_eq!(
            batch.first_arrival_us,
            plan.requests()[members[0]].arrival_us,
            "first_arrival must be the oldest member's arrival"
        );
        assert!(batch.close_us >= batch.first_arrival_us);
        assert!(batch.start_us >= batch.close_us);
        assert!(batch.completion_us > batch.start_us);
        let mut previous_arrival = 0u64;
        for &request in members {
            let planned = plan.requests()[request];
            assert_eq!(planned.batch, Some(batch_index));
            // FIFO coalescing: members in arrival order.
            assert!(planned.arrival_us >= previous_arrival);
            previous_arrival = planned.arrival_us;
            // The coalescing wait is bounded by the policy.
            assert!(
                batch.close_us - planned.arrival_us <= policy.max_delay_us,
                "request {request} waited {} us > max_delay {}",
                batch.close_us - planned.arrival_us,
                policy.max_delay_us
            );
            served_times[request] += 1;
        }
    }
    let mut served = 0usize;
    for (request, &times) in served_times.iter().enumerate() {
        let planned = plan.requests()[request];
        if planned.batch.is_some() {
            assert_eq!(times, 1, "admitted request {request} served {times} times");
            served += 1;
        } else {
            assert_eq!(times, 0, "rejected request {request} must not be served");
        }
    }
    assert_eq!(served, plan.served());
    assert_eq!(plan.requests().len() - served, plan.rejected());
    served
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn open_loop_plans_satisfy_the_coalescer_contract(
        max_batch in 1usize..=8,
        max_delay_us in 0u64..=500,
        rate in 200.0f64..5000.0,
        requests in 1usize..=120,
        capacity in 1usize..=64,
        seed in 0u64..=1000,
    ) {
        let capacity = capacity.max(max_batch);
        let pattern = LoadPattern::OpenLoop { rate_per_sec: rate, requests };
        let plan = Plan::build(&config(max_batch, max_delay_us, 2, capacity), &pattern, seed, 16)
            .expect("plan");
        prop_assert_eq!(plan.requests().len(), requests);
        check_plan_invariants(&plan);
    }

    #[test]
    fn closed_loop_plans_satisfy_the_coalescer_contract(
        max_batch in 1usize..=8,
        max_delay_us in 0u64..=500,
        clients in 1usize..=12,
        think_us in 0u64..=400,
        requests in 1usize..=120,
        capacity in 1usize..=12,
        seed in 0u64..=1000,
    ) {
        let pattern = LoadPattern::ClosedLoop { clients, think_us, requests };
        // Capacity below the client count exercises rejection + retry.
        let plan = Plan::build(
            &config(max_batch, max_delay_us, 3, capacity),
            &pattern,
            seed,
            8,
        )
        .expect("plan");
        prop_assert_eq!(plan.requests().len(), requests);
        let served = check_plan_invariants(&plan);
        if capacity >= clients {
            // Closed-loop occupancy never exceeds the client population, so
            // a queue at least that deep never pushes back.
            prop_assert_eq!(served, requests);
        }
    }

    #[test]
    fn batch_composition_is_invariant_to_the_shard_count(
        max_batch in 1usize..=8,
        max_delay_us in 0u64..=500,
        rate in 500.0f64..4000.0,
        requests in 1usize..=80,
        seed in 0u64..=1000,
    ) {
        let pattern = LoadPattern::OpenLoop { rate_per_sec: rate, requests };
        // Capacity >= requests: admission never pushes back, so the only
        // shard-dependent feedback path (completion -> occupancy) is inert.
        let reference = Plan::build(
            &config(max_batch, max_delay_us, 1, requests),
            &pattern,
            seed,
            16,
        )
        .expect("plan");
        check_plan_invariants(&reference);
        prop_assert_eq!(reference.rejected(), 0);
        for shards in 2usize..=8 {
            let plan = Plan::build(
                &config(max_batch, max_delay_us, shards, requests),
                &pattern,
                seed,
                16,
            )
            .expect("plan");
            check_plan_invariants(&plan);
            prop_assert_eq!(plan.rejected(), 0);
            prop_assert_eq!(plan.batches().len(), reference.batches().len());
            for batch in 0..plan.batches().len() {
                prop_assert_eq!(plan.batch_members(batch), reference.batch_members(batch));
                prop_assert_eq!(
                    plan.batches()[batch].close_us,
                    reference.batches()[batch].close_us
                );
            }
            // Same submissions, same images: the served work is identical.
            for (mine, reference_request) in plan.requests().iter().zip(reference.requests()) {
                prop_assert_eq!(mine.arrival_us, reference_request.arrival_us);
                prop_assert_eq!(mine.image, reference_request.image);
            }
        }
    }
}
