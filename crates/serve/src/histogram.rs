//! Log2-bucketed latency histogram with exact-rank percentile extraction.
//!
//! Values up to 15 µs land in exact unit buckets; above that, each power of
//! two is split into 16 linear sub-buckets, so any recorded value is
//! resolved to within 1/16 (6.25 %) of its magnitude while the whole
//! 64-bit range fits in a fixed 976-slot table.  Percentile extraction is
//! **rank-exact**: the cumulative walk selects precisely the ⌈p·N⌉-th
//! smallest sample's bucket and reports that bucket's upper bound (clamped
//! to the exact observed maximum), so p50/p90/p99 never under-report.
//!
//! Histograms are plain value types: each worker shard records into its
//! own and the engine [`LatencyHistogram::merge`]s them afterwards — no
//! locks on the hot path.

/// Sub-buckets per power of two (and the width of the exact unit range).
const SUB_BUCKETS: usize = 16;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;
/// Bucket count covering the full `u64` range: 16 exact unit buckets plus
/// 16 sub-buckets for each of the 60 remaining leading-bit positions.
const BUCKETS: usize = SUB_BUCKETS * 61;

/// Fixed-size latency histogram over microsecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `value_us`.
    fn index(value_us: u64) -> usize {
        if value_us < SUB_BUCKETS as u64 {
            return value_us as usize;
        }
        let msb = 63 - value_us.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((value_us >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        group * SUB_BUCKETS + sub
    }

    /// Upper bound (inclusive) of the bucket at `index`.
    fn bucket_high(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let group = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        let low = (SUB_BUCKETS as u64 + sub) << (group - 1);
        low + (1u64 << (group - 1)) - 1
    }

    // optima-lint: hot
    /// Records one latency sample.
    pub fn record(&mut self, value_us: u64) {
        self.counts[Self::index(value_us)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value_us);
        self.min = self.min.min(value_us);
        self.max = self.max.max(value_us);
    }
    // optima-lint: end-hot

    /// Resets to empty, keeping the storage.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Folds another histogram into this one (shard merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value, or 0 when empty.
    pub fn min_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `quantile`-th percentile (e.g. `0.99`), resolved to the selected
    /// sample's bucket upper bound and clamped to the exact maximum.
    ///
    /// Returns 0 for an empty histogram.  `quantile` is clamped to `[0, 1]`;
    /// NaN is treated as 1.0 (the conservative end).
    pub fn percentile(&self, quantile: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let quantile = if quantile.is_nan() {
            1.0
        } else {
            quantile.clamp(0.0, 1.0)
        };
        let rank = ((quantile * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_high(index).min(self.max);
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile latency.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference percentile: the ⌈p·N⌉-th smallest sample, exactly.
    fn exact_percentile(sorted: &[u64], quantile: f64) -> u64 {
        let rank = ((quantile * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn small_values_are_recorded_exactly() {
        let mut hist = LatencyHistogram::new();
        for v in [0u64, 1, 5, 15, 15, 3] {
            hist.record(v);
        }
        assert_eq!(hist.count(), 6);
        assert_eq!(hist.min_us(), 0);
        assert_eq!(hist.max_us(), 15);
        assert_eq!(hist.percentile(1.0), 15);
        assert_eq!(hist.p50(), 3);
    }

    #[test]
    fn bucket_bounds_bracket_every_value() {
        // Every value must land in a bucket whose range contains it, with
        // width at most 1/16 of the value.
        let mut value = 1u64;
        while value < u64::MAX / 3 {
            for v in [value, value + value / 3] {
                let index = LatencyHistogram::index(v);
                let high = LatencyHistogram::bucket_high(index);
                assert!(high >= v, "value {v}: high {high}");
                assert!(
                    high - v <= v / SUB_BUCKETS as u64 + 1,
                    "value {v}: bucket too wide (high {high})"
                );
            }
            value = value.saturating_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn percentiles_match_the_exact_rank_within_bucket_resolution() {
        // A deterministic heavy-tailed sample set.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut samples: Vec<u64> = (0..5000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1_000) * (state % 97) + state % 50_000
            })
            .collect();
        let mut hist = LatencyHistogram::new();
        for &sample in &samples {
            hist.record(sample);
        }
        samples.sort_unstable();
        for quantile in [0.5, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&samples, quantile);
            let bucketed = hist.percentile(quantile);
            assert!(bucketed >= exact, "q{quantile}: {bucketed} < {exact}");
            assert!(
                bucketed - exact <= exact / 16 + 1,
                "q{quantile}: {bucketed} overshoots {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in 0..500u64 {
            let value = v * v % 7919;
            if v % 2 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
            combined.record(value);
        }
        left.merge(&right);
        assert_eq!(left.count(), combined.count());
        assert_eq!(left.max_us(), combined.max_us());
        assert_eq!(left.min_us(), combined.min_us());
        for quantile in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.percentile(quantile), combined.percentile(quantile));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.percentile(0.5), 0);
        assert_eq!(hist.min_us(), 0);
        assert_eq!(hist.mean_us(), 0.0);
    }

    #[test]
    fn clear_resets_without_reallocating() {
        let mut hist = LatencyHistogram::new();
        hist.record(12345);
        hist.clear();
        assert_eq!(hist.count(), 0);
        hist.record(7);
        assert_eq!(hist.p50(), 7);
    }
}
