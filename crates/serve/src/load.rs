//! Deterministic open- and closed-loop load generation.
//!
//! Every arrival gap, think time and image pick is derived from the base
//! seed through [`stream_seed`] — the same per-index stream discipline the
//! sweep engine uses — so a load pattern replayed with the same seed
//! produces the identical request trace on any machine, at any shard
//! count.  No ambient entropy, no wall clock.

use crate::error::ServeError;
use optima_core::sweep::stream_seed;

/// Stream tag separating image picks from timing jitter draws.
const IMAGE_STREAM: u64 = 0x494D_4147_4553;
/// Stream tag for open-loop inter-arrival jitter.
const ARRIVAL_STREAM: u64 = 0x4152_5249_5645;
/// Stream tag for closed-loop think-time jitter.
const THINK_STREAM: u64 = 0x0054_4849_4E4B;

/// How clients submit requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadPattern {
    /// Requests arrive at a fixed average rate regardless of completions
    /// (an external arrival process; models heavy independent traffic).
    OpenLoop {
        /// Average arrival rate in requests per second.
        rate_per_sec: f64,
        /// Total number of submissions.
        requests: usize,
    },
    /// A fixed population of clients, each submitting, waiting for its
    /// result, thinking, then submitting again.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
        /// Average think time between a completion and the next submission,
        /// in virtual microseconds.
        think_us: u64,
        /// Total number of submissions across all clients.
        requests: usize,
    },
}

impl LoadPattern {
    /// Total number of submissions the pattern generates.
    pub fn requests(&self) -> usize {
        match *self {
            LoadPattern::OpenLoop { requests, .. } => requests,
            LoadPattern::ClosedLoop { requests, .. } => requests,
        }
    }

    /// Checks the pattern invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a non-positive rate, zero
    /// clients or zero requests.
    pub fn validate(&self) -> Result<(), ServeError> {
        let context = match *self {
            LoadPattern::OpenLoop { rate_per_sec, .. }
                if rate_per_sec <= 0.0 || rate_per_sec.is_nan() =>
            {
                Some("open-loop rate_per_sec must be positive".to_string())
            }
            LoadPattern::ClosedLoop { clients: 0, .. } => {
                Some("closed-loop client count must be at least 1".to_string())
            }
            _ if self.requests() == 0 => Some("request count must be at least 1".to_string()),
            _ => None,
        };
        match context {
            Some(context) => Err(ServeError::InvalidConfig { context }),
            None => Ok(()),
        }
    }
}

/// A unit-interval draw from the `(tag, index)` stream of `seed`.
fn unit_draw(seed: u64, tag: u64, index: u64) -> f64 {
    let word = stream_seed(seed ^ tag, index);
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Image-pool index served to request `id`.
pub fn image_for(seed: u64, id: u64, image_count: usize) -> usize {
    debug_assert!(image_count > 0);
    (stream_seed(seed ^ IMAGE_STREAM, id) % image_count as u64) as usize
}

/// Open-loop gap before arrival `index`, in virtual microseconds: the
/// nominal period jittered to 75–125 %, never below 1 µs.
pub fn open_loop_gap_us(seed: u64, index: u64, rate_per_sec: f64) -> u64 {
    let period_us = 1.0e6 / rate_per_sec;
    let jittered = period_us * (0.75 + 0.5 * unit_draw(seed, ARRIVAL_STREAM, index));
    (jittered as u64).max(1)
}

/// Closed-loop think gap before client `client`'s `attempt`-th submission,
/// in virtual microseconds: the nominal think time jittered to 50–150 %.
pub fn think_gap_us(seed: u64, client: usize, attempt: u64, think_us: u64) -> u64 {
    let tag = THINK_STREAM ^ ((client as u64) << 32);
    let jittered = think_us as f64 * (0.5 + unit_draw(seed, tag, attempt));
    (jittered as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_patterns_are_rejected() {
        assert!(LoadPattern::OpenLoop {
            rate_per_sec: 0.0,
            requests: 10,
        }
        .validate()
        .is_err());
        assert!(LoadPattern::OpenLoop {
            rate_per_sec: 100.0,
            requests: 0,
        }
        .validate()
        .is_err());
        assert!(LoadPattern::ClosedLoop {
            clients: 0,
            think_us: 10,
            requests: 5,
        }
        .validate()
        .is_err());
        assert!(LoadPattern::ClosedLoop {
            clients: 2,
            think_us: 0,
            requests: 5,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        assert_eq!(image_for(7, 3, 10), image_for(7, 3, 10));
        assert_eq!(
            open_loop_gap_us(7, 3, 1000.0),
            open_loop_gap_us(7, 3, 1000.0)
        );
        let differing = (0..64).filter(|&i| image_for(7, i, 100) != image_for(8, i, 100));
        assert!(differing.count() > 32);
    }

    #[test]
    fn open_loop_gaps_stay_within_the_jitter_band() {
        for index in 0..500u64 {
            let gap = open_loop_gap_us(42, index, 1000.0);
            // Nominal period 1000us, jitter 75-125%.
            assert!((750..=1250).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn think_gaps_stay_within_the_jitter_band_and_never_hit_zero() {
        for attempt in 0..200u64 {
            let gap = think_gap_us(42, 3, attempt, 100);
            assert!((50..=150).contains(&gap), "gap {gap}");
        }
        assert!(think_gap_us(42, 0, 0, 0) >= 1);
    }
}
