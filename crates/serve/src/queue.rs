//! The bounded submission queue.

use crate::error::ServeError;
use std::collections::VecDeque;

/// One single-image inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotonic id assigned at submission.
    pub id: u64,
    /// Arrival time in virtual microseconds.
    pub arrival_us: u64,
    /// Index of the requested image in the engine's image pool.
    pub image: usize,
}

/// A bounded FIFO of admitted-but-incomplete requests.
///
/// The capacity bounds the number of requests that have been admitted but
/// whose batch has **not yet completed** — waiting room *and* in-service
/// occupancy together.  This is deliberate: coalescing alone keeps the
/// waiting room below `max_batch`, so a bound on waiting requests only
/// would never push back.  Bounding the whole pipeline means a saturated
/// shard pool surfaces as a typed [`ServeError::QueueOverflow`] at
/// admission time — backpressure, never a silent drop (the same philosophy
/// as the sweep engine's error-strict fan-out).
///
/// Requests leave the FIFO when the coalescer takes them into a batch
/// ([`RequestQueue::take_batch`]) and release their capacity slot when that
/// batch completes ([`RequestQueue::complete`]).
#[derive(Debug)]
pub struct RequestQueue {
    capacity: usize,
    waiting: VecDeque<Request>,
    outstanding: usize,
}

impl RequestQueue {
    /// A queue admitting at most `capacity` incomplete requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero capacity.
    pub fn new(capacity: usize) -> Result<Self, ServeError> {
        if capacity == 0 {
            return Err(ServeError::InvalidConfig {
                context: "queue capacity must be at least 1".to_string(),
            });
        }
        Ok(RequestQueue {
            capacity,
            waiting: VecDeque::new(),
            outstanding: 0,
        })
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests waiting to be coalesced.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Number of admitted requests whose batch has not completed yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Returns `true` when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Arrival time of the oldest waiting request, if any.
    pub fn oldest_arrival_us(&self) -> Option<u64> {
        self.waiting.front().map(|request| request.arrival_us)
    }

    /// Admits one request.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueOverflow`] naming the capacity when every
    /// slot is occupied.  The request is not enqueued; the caller owns the
    /// retry/reject decision.
    pub fn try_push(&mut self, request: Request) -> Result<(), ServeError> {
        if self.outstanding == self.capacity {
            return Err(ServeError::QueueOverflow {
                capacity: self.capacity,
            });
        }
        self.outstanding += 1;
        self.waiting.push_back(request);
        Ok(())
    }

    /// Moves up to `max_batch` oldest waiting requests into `batch`
    /// (appended in FIFO order) and returns how many were taken.  The taken
    /// requests still hold their capacity slots until [`Self::complete`].
    pub fn take_batch(&mut self, max_batch: usize, batch: &mut Vec<Request>) -> usize {
        let take = max_batch.min(self.waiting.len());
        for _ in 0..take {
            // `take` never exceeds the queue length, so the pop cannot fail.
            if let Some(request) = self.waiting.pop_front() {
                batch.push(request);
            }
        }
        take
    }

    /// Releases the capacity slots of `count` completed requests.
    pub fn complete(&mut self, count: usize) {
        debug_assert!(count <= self.outstanding);
        self.outstanding = self.outstanding.saturating_sub(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, arrival_us: u64) -> Request {
        Request {
            id,
            arrival_us,
            image: id as usize,
        }
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(RequestQueue::new(0).is_err());
    }

    #[test]
    fn overflow_is_a_typed_error_naming_the_capacity() {
        let mut queue = RequestQueue::new(2).unwrap();
        queue.try_push(request(0, 0)).unwrap();
        queue.try_push(request(1, 5)).unwrap();
        match queue.try_push(request(2, 9)) {
            Err(ServeError::QueueOverflow { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueOverflow, got {other:?}"),
        }
        assert_eq!(queue.waiting(), 2);
        assert_eq!(queue.outstanding(), 2);
    }

    #[test]
    fn capacity_is_released_at_completion_not_at_coalescing() {
        let mut queue = RequestQueue::new(2).unwrap();
        queue.try_push(request(0, 0)).unwrap();
        queue.try_push(request(1, 3)).unwrap();
        let mut batch = Vec::new();
        assert_eq!(queue.take_batch(8, &mut batch), 2);
        assert_eq!(batch.len(), 2);
        assert!(queue.is_empty());
        // Still saturated: the batch is in service.
        assert!(queue.try_push(request(2, 7)).is_err());
        queue.complete(2);
        assert_eq!(queue.outstanding(), 0);
        queue.try_push(request(2, 7)).unwrap();
        assert_eq!(queue.oldest_arrival_us(), Some(7));
    }

    #[test]
    fn take_batch_preserves_fifo_order_and_respects_max_batch() {
        let mut queue = RequestQueue::new(8).unwrap();
        for id in 0..5 {
            queue.try_push(request(id, id * 10)).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(queue.take_batch(3, &mut batch), 3);
        assert_eq!(
            batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(queue.oldest_arrival_us(), Some(30));
    }
}
