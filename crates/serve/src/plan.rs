//! The virtual-clock planner: admission, batch coalescing and shard
//! timeline construction.
//!
//! Planning is a discrete-event simulation over a virtual microsecond
//! clock.  Three event sources interleave in time order (ties resolved
//! completion → deadline → submission, so capacity freed at instant `t` is
//! visible to a submission at the same instant):
//!
//! 1. **Submissions** from the deterministic load pattern.  An admitted
//!    request joins the open batch; a request that finds every queue slot
//!    occupied is recorded as rejected (typed backpressure, never a silent
//!    drop).
//! 2. **Batch deadlines** — the open batch closes when its oldest request
//!    has waited [`BatchPolicy::max_delay_us`].
//! 3. **Batch completions** — release queue capacity and (closed loop)
//!    re-arm the clients whose requests finished.
//!
//! The open batch also closes the moment it reaches
//! [`BatchPolicy::max_batch`].  A closed batch is assigned round-robin to
//! a shard and scheduled at `max(close, shard_free)`; its virtual service
//! time comes from the [`ServiceModel`].  Everything is arithmetic over
//! the seed and the configuration, so the same inputs always produce the
//! identical plan — batching decisions are replayable in tests, and the
//! **batch composition is independent of the shard count** whenever no
//! request is rejected (admission pressure is the only completion-time
//! feedback into coalescing).

use crate::error::ServeError;
use crate::histogram::LatencyHistogram;
use crate::load::{self, LoadPattern};
use crate::policy::{BatchPolicy, ServiceModel};
use crate::queue::{Request, RequestQueue};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static configuration of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Coalescing policy.
    pub policy: BatchPolicy,
    /// Number of worker shards (each owns one `KernelScratch`).
    pub shards: usize,
    /// Capacity of the submission queue (admitted-but-incomplete requests).
    pub queue_capacity: usize,
    /// Virtual per-batch cost model driving the planner's clock.
    pub service: ServiceModel,
}

impl ServeConfig {
    /// Checks the configuration invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero shard count, zero
    /// queue capacity or an invalid policy.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.policy.validate()?;
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig {
                context: "shard count must be at least 1".to_string(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                context: "queue capacity must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// One submission, as planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRequest {
    /// Monotonic submission id (also the request's index in the plan).
    pub id: u64,
    /// Arrival time in virtual microseconds.
    pub arrival_us: u64,
    /// Index into the engine's image pool.
    pub image: usize,
    /// The batch that serves this request, or `None` if it was rejected at
    /// admission.
    pub batch: Option<usize>,
}

/// One coalesced batch on a shard's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedBatch {
    /// The shard executing this batch (round-robin by batch sequence).
    pub shard: usize,
    /// Arrival of the batch's oldest request.
    pub first_arrival_us: u64,
    /// When the coalescer closed the batch.
    pub close_us: u64,
    /// When the shard starts it: `max(close_us, shard free time)`.
    pub start_us: u64,
    /// `start_us` plus the model's virtual service time.
    pub completion_us: u64,
    /// Offset of the batch's members in the plan's flat member list.
    pub member_start: usize,
    /// Number of member requests.
    pub members: usize,
}

/// A fully planned serving run: every admission decision, batch and shard
/// assignment, replayable and machine-independent.
#[derive(Debug, Clone)]
pub struct Plan {
    config: ServeConfig,
    image_count: usize,
    requests: Vec<PlannedRequest>,
    batches: Vec<PlannedBatch>,
    /// Flat batch-member storage: request indices, grouped per batch.
    members: Vec<usize>,
    /// Per request: its slot in its shard's output stream (0 if rejected).
    slots: Vec<usize>,
    /// Members per shard (sizes the executor's output buffers).
    shard_members: Vec<usize>,
}

/// Closed-loop client bookkeeping.
struct Client {
    /// Next submission time, or `None` while waiting for a completion.
    ready_at: Option<u64>,
    /// Number of submissions attempted so far (jitter stream index).
    attempts: u64,
}

/// The submission source driving the planner.
enum Source {
    Open {
        rate_per_sec: f64,
        next_arrival_us: u64,
    },
    Closed {
        clients: Vec<Client>,
        think_us: u64,
        /// Client of each submitted request (indexed by request id).
        client_of: Vec<usize>,
    },
}

impl Plan {
    /// Plans a serving run.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid configuration
    /// or pattern, or a zero-sized image pool.
    pub fn build(
        config: &ServeConfig,
        pattern: &LoadPattern,
        seed: u64,
        image_count: usize,
    ) -> Result<Plan, ServeError> {
        config.validate()?;
        pattern.validate()?;
        if image_count == 0 {
            return Err(ServeError::InvalidConfig {
                context: "image pool must hold at least one image".to_string(),
            });
        }

        let total = pattern.requests();
        let mut plan = Plan {
            config: *config,
            image_count,
            requests: Vec::with_capacity(total),
            batches: Vec::new(),
            members: Vec::with_capacity(total),
            slots: vec![0; total],
            shard_members: vec![0; config.shards],
        };
        let mut queue = RequestQueue::new(config.queue_capacity)?;
        let mut source = match *pattern {
            LoadPattern::OpenLoop { rate_per_sec, .. } => Source::Open {
                rate_per_sec,
                next_arrival_us: load::open_loop_gap_us(seed, 0, rate_per_sec),
            },
            LoadPattern::ClosedLoop {
                clients, think_us, ..
            } => Source::Closed {
                clients: (0..clients)
                    .map(|client| Client {
                        ready_at: Some(load::think_gap_us(seed, client, 0, think_us)),
                        attempts: 1,
                    })
                    .collect(),
                think_us,
                client_of: Vec::with_capacity(total),
            },
        };
        let mut shard_free = vec![0u64; config.shards];
        // Min-heap of (completion, batch index) pending completion events.
        let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut batch_buffer: Vec<Request> = Vec::with_capacity(config.policy.max_batch);
        let mut submitted = 0usize;

        loop {
            let t_submit = if submitted < total {
                source.next_ready()
            } else {
                None
            };
            let t_deadline = queue
                .oldest_arrival_us()
                .map(|arrival| arrival + config.policy.max_delay_us);
            let t_complete = completions.peek().map(|Reverse((t, _))| *t);

            // Tie order: completion, then deadline, then submission.
            let next_completion = t_complete
                .filter(|&t| t_deadline.is_none_or(|d| t <= d) && t_submit.is_none_or(|s| t <= s));
            if let Some(now) = next_completion {
                // `peek` above proved the heap is non-empty.
                if let Some(Reverse((_, batch_index))) = completions.pop() {
                    let batch = plan.batches[batch_index];
                    queue.complete(batch.members);
                    if let Source::Closed {
                        clients,
                        think_us,
                        client_of,
                    } = &mut source
                    {
                        let members =
                            &plan.members[batch.member_start..batch.member_start + batch.members];
                        for &request in members {
                            let client = client_of[request];
                            let gap = load::think_gap_us(
                                seed,
                                client,
                                clients[client].attempts,
                                *think_us,
                            );
                            clients[client].ready_at = Some(now + gap);
                        }
                    }
                }
                continue;
            }

            let deadline_due = t_deadline
                .filter(|&d| t_submit.is_none_or(|s| d <= s))
                .is_some();
            if deadline_due {
                if let Some(deadline) = t_deadline {
                    plan.close_batch(
                        deadline,
                        &mut queue,
                        &mut shard_free,
                        &mut completions,
                        &mut batch_buffer,
                    );
                }
                continue;
            }

            let Some(now) = t_submit else {
                break;
            };
            let id = submitted as u64;
            let image = load::image_for(seed, id, image_count);
            let admitted = queue
                .try_push(Request {
                    id,
                    arrival_us: now,
                    image,
                })
                .is_ok();
            plan.requests.push(PlannedRequest {
                id,
                arrival_us: now,
                image,
                batch: None,
            });
            source.advance(seed, now, id, admitted);
            submitted += 1;
            if queue.waiting() == config.policy.max_batch {
                plan.close_batch(
                    now,
                    &mut queue,
                    &mut shard_free,
                    &mut completions,
                    &mut batch_buffer,
                );
            }
        }
        Ok(plan)
    }

    /// Closes the oldest `max_batch` waiting requests into a new batch at
    /// time `close_us` and schedules it on the next round-robin shard.
    fn close_batch(
        &mut self,
        close_us: u64,
        queue: &mut RequestQueue,
        shard_free: &mut [u64],
        completions: &mut BinaryHeap<Reverse<(u64, usize)>>,
        buffer: &mut Vec<Request>,
    ) {
        buffer.clear();
        let taken = queue.take_batch(self.config.policy.max_batch, buffer);
        if taken == 0 {
            return;
        }
        let batch_index = self.batches.len();
        let shard = batch_index % self.config.shards;
        let start_us = close_us.max(shard_free[shard]);
        let completion_us = start_us + self.config.service.service_us(taken);
        shard_free[shard] = completion_us;
        let member_start = self.members.len();
        for request in buffer.iter() {
            let index = request.id as usize;
            self.requests[index].batch = Some(batch_index);
            self.slots[index] = self.shard_members[shard];
            self.shard_members[shard] += 1;
            self.members.push(index);
        }
        self.batches.push(PlannedBatch {
            shard,
            first_arrival_us: buffer[0].arrival_us,
            close_us,
            start_us,
            completion_us,
            member_start,
            members: taken,
        });
        completions.push(Reverse((completion_us, batch_index)));
    }

    /// The configuration the plan was built for.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Size of the image pool the plan indexes into.
    pub fn image_count(&self) -> usize {
        self.image_count
    }

    /// Every submission, in id order (admitted and rejected).
    pub fn requests(&self) -> &[PlannedRequest] {
        &self.requests
    }

    /// Every batch, in close order.
    pub fn batches(&self) -> &[PlannedBatch] {
        &self.batches
    }

    /// The request indices of batch `batch`, in coalescing order.
    pub fn batch_members(&self, batch: usize) -> &[usize] {
        let b = &self.batches[batch];
        &self.members[b.member_start..b.member_start + b.members]
    }

    /// The output slot of request `request` within its shard.
    pub fn slot(&self, request: usize) -> usize {
        self.slots[request]
    }

    /// Number of member requests planned onto shard `shard`.
    pub fn shard_member_count(&self, shard: usize) -> usize {
        self.shard_members[shard]
    }

    /// Number of served (admitted) requests.
    pub fn served(&self) -> usize {
        self.members.len()
    }

    /// Number of rejected submissions (queue overflow backpressure).
    pub fn rejected(&self) -> usize {
        self.requests.len() - self.members.len()
    }

    /// Mean batch size, or 0.0 without batches.
    pub fn mean_batch(&self) -> f64 {
        if self.batches.is_empty() {
            0.0
        } else {
            self.members.len() as f64 / self.batches.len() as f64
        }
    }

    /// Largest planned batch.
    pub fn max_batch(&self) -> usize {
        self.batches.iter().map(|b| b.members).max().unwrap_or(0)
    }

    /// Per-shard virtual end-to-end latency histograms (arrival →
    /// completion), in microseconds.
    pub fn virtual_latency_by_shard(&self) -> Vec<LatencyHistogram> {
        let mut histograms = vec![LatencyHistogram::new(); self.config.shards];
        for batch in &self.batches {
            let members = &self.members[batch.member_start..batch.member_start + batch.members];
            for &request in members {
                let latency = batch.completion_us - self.requests[request].arrival_us;
                histograms[batch.shard].record(latency);
            }
        }
        histograms
    }

    /// Virtual end-to-end latency over all shards (shard histograms merged).
    pub fn virtual_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for histogram in self.virtual_latency_by_shard() {
            merged.merge(&histogram);
        }
        merged
    }

    /// Virtual makespan: the last completion, in microseconds.
    pub fn makespan_us(&self) -> u64 {
        self.batches
            .iter()
            .map(|b| b.completion_us)
            .max()
            .unwrap_or(0)
    }

    /// Virtual sustained throughput in requests per second.
    pub fn virtual_throughput_per_sec(&self) -> f64 {
        let makespan = self.makespan_us();
        if makespan == 0 {
            0.0
        } else {
            self.served() as f64 * 1.0e6 / makespan as f64
        }
    }
}

impl Source {
    /// Earliest pending submission time.
    fn next_ready(&self) -> Option<u64> {
        match self {
            Source::Open {
                next_arrival_us, ..
            } => Some(*next_arrival_us),
            Source::Closed { clients, .. } => {
                clients.iter().filter_map(|client| client.ready_at).min()
            }
        }
    }

    /// Advances past submission `id` handled at time `now`.
    fn advance(&mut self, seed: u64, now: u64, id: u64, admitted: bool) {
        match self {
            Source::Open {
                rate_per_sec,
                next_arrival_us,
            } => {
                *next_arrival_us = now + load::open_loop_gap_us(seed, id + 1, *rate_per_sec);
            }
            Source::Closed {
                clients,
                think_us,
                client_of,
            } => {
                // The ready client with the smallest time (ties: lowest
                // index) just submitted.
                let chosen = clients
                    .iter()
                    .enumerate()
                    .filter_map(|(index, client)| client.ready_at.map(|t| (t, index)))
                    .min()
                    .map(|(_, index)| index);
                if let Some(index) = chosen {
                    client_of.push(index);
                    clients[index].attempts += 1;
                    clients[index].ready_at = if admitted {
                        // Woken by the completion event of its batch.
                        None
                    } else {
                        // Rejected: back off one think time and retry.
                        let gap =
                            load::think_gap_us(seed, index, clients[index].attempts, *think_us);
                        Some(now + gap)
                    };
                }
            }
        }
    }
}
