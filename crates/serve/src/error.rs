//! Error type of the serving engine.

use optima_dnn::error::DnnError;
use std::fmt;

/// Error returned by queue admission, plan construction and shard execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The engine or one of its components was configured inconsistently.
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// Admission was refused because the queue's capacity is exhausted.
    ///
    /// This is the backpressure signal: the engine never drops a request
    /// silently — a caller that sees this error knows the system is
    /// saturated and owns the retry decision.
    QueueOverflow {
        /// The configured capacity that was exhausted.
        capacity: usize,
    },
    /// A worker shard panicked while executing its batches.
    ShardPanicked {
        /// Zero-based index of the panicking shard.
        shard: usize,
    },
    /// Inference failed for one request.  Execution is error-strict: the
    /// lowest failing shard's error is returned and no partial statistics
    /// are reported.
    RequestFailed {
        /// The failing request's id.
        request: u64,
        /// The underlying inference error.
        source: DnnError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { context } => {
                write!(f, "invalid serving configuration: {context}")
            }
            ServeError::QueueOverflow { capacity } => {
                write!(
                    f,
                    "request queue overflow: all {capacity} slots are occupied"
                )
            }
            ServeError::ShardPanicked { shard } => {
                write!(f, "worker shard {shard} panicked")
            }
            ServeError::RequestFailed { request, source } => {
                write!(f, "inference for request {request} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::RequestFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn queue_overflow_names_the_capacity() {
        let err = ServeError::QueueOverflow { capacity: 64 };
        let text = err.to_string();
        assert!(text.contains("64"), "{text}");
        assert!(text.contains("overflow"), "{text}");
        assert!(err.source().is_none());
    }

    #[test]
    fn shard_panic_names_the_shard() {
        let err = ServeError::ShardPanicked { shard: 3 };
        let text = err.to_string();
        assert!(text.contains("shard 3"), "{text}");
        assert!(err.source().is_none());
    }

    #[test]
    fn request_failure_chains_to_the_dnn_error() {
        let err = ServeError::RequestFailed {
            request: 17,
            source: DnnError::ShapeMismatch {
                expected: vec![1, 8, 8],
                found: vec![2, 8, 8],
            },
        };
        let text = err.to_string();
        assert!(text.contains("request 17"), "{text}");
        // The chain reaches the underlying DnnError through source().
        let source = err.source().expect("source");
        assert!(source.to_string().contains("shape mismatch"));
    }

    #[test]
    fn invalid_config_carries_its_context() {
        let err = ServeError::InvalidConfig {
            context: "max_batch must be at least 1".to_string(),
        };
        assert!(err.to_string().contains("max_batch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
