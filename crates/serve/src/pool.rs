//! The worker-shard pool: plan execution over real kernels.
//!
//! Each shard owns one [`KernelScratch`] arena and a preallocated output
//! slab sized to the members the plan routed to it.  Executing a plan
//! walks every shard's batches in close order, runs each member through
//! the model's scratch-arena inference path
//! ([`BatchInferenceModel::predict_with`], i.e. `Network::infer_with` /
//! `QuantizedNetwork::forward_with`) and copies the logits into the
//! member's slot — so after the first warm-up burst the steady state
//! performs **zero** heap allocations per request (pinned by the crate's
//! counting-allocator test).  With more than one shard the pool spans
//! scoped threads, one per shard; a single-shard pool runs inline on the
//! caller's thread.
//!
//! Because the plan fixes batch composition and slot assignment up front,
//! the logits of every request are **bit-identical to a lone
//! `predict_with` call** — independent of shard count, batch policy and
//! thread interleaving.  Only the *measured* per-batch wall durations
//! differ between runs, and those feed reporting exclusively.

use crate::error::ServeError;
use crate::histogram::LatencyHistogram;
use crate::measure;
use crate::plan::Plan;
use optima_dnn::eval::BatchInferenceModel;
use optima_dnn::scratch::KernelScratch;
use optima_dnn::Tensor;

/// One worker shard: a scratch arena plus its output slab.
#[derive(Debug, Default)]
struct ShardState {
    scratch: KernelScratch,
    /// Logits per member slot, in the shard's batch/coalescing order.
    outputs: Vec<Tensor>,
    /// Measured wall seconds per batch, in the shard's batch order.
    wall_batch_seconds: Vec<f64>,
}

/// A pool of worker shards executing planned batches.
#[derive(Debug)]
pub struct ShardPool {
    shards: Vec<ShardState>,
}

/// Wall-clock statistics of the most recent execution: the plan's virtual
/// arrival/close timeline replayed with the measured batch durations.
#[derive(Debug, Clone)]
pub struct WallStats {
    /// End-to-end latency over all requests (shard histograms merged).
    pub latency: LatencyHistogram,
    /// Per-shard latency histograms (merge inputs).
    pub per_shard: Vec<LatencyHistogram>,
    /// Sustained throughput in requests per second.
    pub throughput_per_sec: f64,
    /// Last projected completion, in microseconds.
    pub makespan_us: u64,
    /// Total measured batch service time in seconds (shard busy time).
    pub busy_seconds: f64,
}

impl ShardPool {
    /// A pool of `shards` workers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero shard count.
    pub fn new(shards: usize) -> Result<Self, ServeError> {
        if shards == 0 {
            return Err(ServeError::InvalidConfig {
                context: "shard count must be at least 1".to_string(),
            });
        }
        Ok(ShardPool {
            shards: (0..shards).map(|_| ShardState::default()).collect(),
        })
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Executes every planned batch against `model`, drawing request
    /// images from `images` (the pool the plan was built for).
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidConfig`] — the plan was built for a
    ///   different shard count or image-pool size.
    /// * [`ServeError::RequestFailed`] — inference failed; the lowest
    ///   failing shard's error is returned.
    /// * [`ServeError::ShardPanicked`] — a worker thread panicked.
    pub fn execute<M: BatchInferenceModel>(
        &mut self,
        plan: &Plan,
        images: &[Tensor],
        model: &M,
    ) -> Result<(), ServeError> {
        if plan.config().shards != self.shards.len() {
            return Err(ServeError::InvalidConfig {
                context: format!(
                    "plan was built for {} shards but the pool has {}",
                    plan.config().shards,
                    self.shards.len()
                ),
            });
        }
        if plan.image_count() != images.len() {
            return Err(ServeError::InvalidConfig {
                context: format!(
                    "plan indexes an image pool of {} but {} images were provided",
                    plan.image_count(),
                    images.len()
                ),
            });
        }
        for (shard, state) in self.shards.iter_mut().enumerate() {
            state
                .outputs
                .resize_with(plan.shard_member_count(shard), Tensor::default);
            let batches = plan.batches().iter().filter(|b| b.shard == shard).count();
            state.wall_batch_seconds.resize(batches, 0.0);
        }
        if self.shards.len() == 1 {
            return run_shard(0, &mut self.shards[0], plan, images, model);
        }
        let results: Vec<Result<(), ServeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(shard, state)| {
                    scope.spawn(move || run_shard(shard, state, plan, images, model))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(shard, handle)| {
                    handle
                        .join()
                        .unwrap_or(Err(ServeError::ShardPanicked { shard }))
                })
                .collect()
        });
        for result in results {
            result?;
        }
        Ok(())
    }

    /// The logits the last execution produced for `request`, or `None` for
    /// a rejected request.
    pub fn logits(&self, plan: &Plan, request: usize) -> Option<&Tensor> {
        let batch = plan.requests().get(request)?.batch?;
        let shard = plan.batches()[batch].shard;
        self.shards[shard].outputs.get(plan.slot(request))
    }

    /// Replays the plan's timeline with the measured batch durations.
    ///
    /// Arrivals and batch-close instants stay virtual (they are admission
    /// decisions, already fixed by the plan); service times are the wall
    /// durations just measured.  The result is the projected end-to-end
    /// latency distribution and sustained throughput of this machine under
    /// the planned load.
    pub fn wall_stats(&self, plan: &Plan) -> WallStats {
        let shards = self.shards.len();
        let mut per_shard = vec![LatencyHistogram::new(); shards];
        let mut shard_free = vec![0u64; shards];
        let mut cursor = vec![0usize; shards];
        let mut makespan_us = 0u64;
        let mut busy_seconds = 0.0f64;
        for (batch_index, batch) in plan.batches().iter().enumerate() {
            let seconds = self.shards[batch.shard]
                .wall_batch_seconds
                .get(cursor[batch.shard])
                .copied()
                .unwrap_or(0.0);
            cursor[batch.shard] += 1;
            busy_seconds += seconds;
            let service_us = ((seconds * 1.0e6) as u64).max(1);
            let start_us = batch.close_us.max(shard_free[batch.shard]);
            let completion_us = start_us + service_us;
            shard_free[batch.shard] = completion_us;
            makespan_us = makespan_us.max(completion_us);
            for &request in plan.batch_members(batch_index) {
                let latency = completion_us - plan.requests()[request].arrival_us;
                per_shard[batch.shard].record(latency);
            }
        }
        let mut latency = LatencyHistogram::new();
        for histogram in &per_shard {
            latency.merge(histogram);
        }
        let throughput_per_sec = if makespan_us == 0 {
            0.0
        } else {
            plan.served() as f64 * 1.0e6 / makespan_us as f64
        };
        WallStats {
            latency,
            per_shard,
            throughput_per_sec,
            makespan_us,
            busy_seconds,
        }
    }
}

/// Runs every batch the plan routed to `shard`, in close order.
fn run_shard<M: BatchInferenceModel>(
    shard: usize,
    state: &mut ShardState,
    plan: &Plan,
    images: &[Tensor],
    model: &M,
) -> Result<(), ServeError> {
    let ShardState {
        scratch,
        outputs,
        wall_batch_seconds,
    } = state;
    let mut local_batch = 0usize;
    for (batch_index, batch) in plan.batches().iter().enumerate() {
        if batch.shard != shard {
            continue;
        }
        let (result, seconds) = measure::timed(|| {
            // optima-lint: hot
            for &request in plan.batch_members(batch_index) {
                let planned = plan.requests()[request];
                match model.predict_with(&images[planned.image], scratch) {
                    Ok(logits) => outputs[plan.slot(request)].copy_from(logits),
                    Err(source) => {
                        return Err(ServeError::RequestFailed {
                            request: planned.id,
                            source,
                        })
                    }
                }
            }
            Ok(())
            // optima-lint: end-hot
        });
        wall_batch_seconds[local_batch] = seconds;
        local_batch += 1;
        result?;
    }
    Ok(())
}
