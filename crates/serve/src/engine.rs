//! The top-level serving engine: plan, execute, report.

use crate::error::ServeError;
use crate::load::LoadPattern;
use crate::plan::{Plan, ServeConfig};
use crate::pool::{ShardPool, WallStats};
use optima_dnn::eval::BatchInferenceModel;
use optima_dnn::Tensor;

/// A serving engine bound to one configuration: a shard pool that plans
/// and executes load patterns, retaining the last plan for inspection.
///
/// The pool's scratch arenas and output slabs persist across runs, so a
/// warm engine re-running a pattern of the same shape allocates nothing
/// per request (the crate's counting-allocator test pins this on the
/// single-shard inline path).
#[derive(Debug)]
pub struct ServingEngine {
    config: ServeConfig,
    pool: ShardPool,
    plan: Option<Plan>,
}

impl ServingEngine {
    /// An engine for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(ServingEngine {
            pool: ShardPool::new(config.shards)?,
            config,
            plan: None,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Plans `pattern` deterministically from `seed` and executes every
    /// batch against `model` over the `images` pool.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution errors; see
    /// [`Plan::build`] and [`ShardPool::execute`].
    pub fn run<M: BatchInferenceModel>(
        &mut self,
        pattern: &LoadPattern,
        seed: u64,
        images: &[Tensor],
        model: &M,
    ) -> Result<(), ServeError> {
        let plan = Plan::build(&self.config, pattern, seed, images.len())?;
        self.pool.execute(&plan, images, model)?;
        self.plan = Some(plan);
        Ok(())
    }

    /// The most recent run's plan.
    pub fn last_plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// The most recent run's measured wall statistics.
    pub fn wall_stats(&self) -> Option<WallStats> {
        self.plan.as_ref().map(|plan| self.pool.wall_stats(plan))
    }

    /// The logits of request `request` from the most recent run, or
    /// `None` for a rejected (or unknown) request.
    pub fn logits(&self, request: usize) -> Option<&Tensor> {
        self.plan
            .as_ref()
            .and_then(|plan| self.pool.logits(plan, request))
    }
}
