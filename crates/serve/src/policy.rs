//! Batching policy and the virtual service-time model.

use crate::error::ServeError;

/// The coalescer's latency/efficiency trade-off.
///
/// A batch closes as soon as it holds `max_batch` requests **or** its oldest
/// request has waited `max_delay_us` — whichever comes first.  Larger
/// batches amortize the packed-panel / LUT sweep set-up across more images;
/// a smaller delay bounds the coalescing contribution to tail latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum number of requests per batch (≥ 1).
    pub max_batch: usize,
    /// Maximum time (virtual microseconds) a request may wait for its batch
    /// to close.  `0` disables coalescing: every request is its own batch.
    pub max_delay_us: u64,
}

impl BatchPolicy {
    /// A validated policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `max_batch` is zero.
    pub fn new(max_batch: usize, max_delay_us: u64) -> Result<Self, ServeError> {
        let policy = BatchPolicy {
            max_batch,
            max_delay_us,
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Checks the policy invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `max_batch` is zero.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                context: "max_batch must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Fixed virtual cost of serving one batch, used by the planner's
/// deterministic clock.
///
/// Virtual time makes batching decisions replayable: the same arrivals,
/// policy and service model always produce the same plan, on any machine.
/// Wall-clock execution replays the same timeline with measured batch
/// durations instead (see `ShardPool::wall_stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Per-batch fixed overhead in virtual microseconds (dispatch, panel
    /// reuse set-up).
    pub batch_overhead_us: u64,
    /// Marginal virtual microseconds per image in the batch.
    pub per_image_us: u64,
}

impl ServiceModel {
    /// Virtual service time of a batch of `batch` images.
    pub fn service_us(&self, batch: usize) -> u64 {
        self.batch_overhead_us + self.per_image_us * batch as u64
    }
}

impl Default for ServiceModel {
    /// Loosely calibrated to the repo's tiny probe CNN on the snapshot LUT
    /// path: tens of microseconds per image with a small per-batch set-up.
    fn default() -> Self {
        ServiceModel {
            batch_overhead_us: 20,
            per_image_us: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_max_batch_is_rejected() {
        let err = BatchPolicy::new(0, 100).unwrap_err();
        assert!(err.to_string().contains("max_batch"));
        assert!(BatchPolicy::new(1, 0).is_ok());
    }

    #[test]
    fn service_time_is_affine_in_the_batch_size() {
        let model = ServiceModel {
            batch_overhead_us: 10,
            per_image_us: 7,
        };
        assert_eq!(model.service_us(0), 10);
        assert_eq!(model.service_us(1), 17);
        assert_eq!(model.service_us(8), 66);
    }
}
