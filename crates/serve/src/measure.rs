//! Wall-clock measurement shim.
//!
//! The serving engine is deterministic by construction: planning runs on a
//! virtual clock and nothing else in the crate may read wall time (the
//! workspace's R2 nondeterminism lint enforces it).  Execution still wants
//! *measured* batch durations for the throughput/latency reports, so the
//! single `Instant` touch-point lives here, in the one file the lint
//! configuration allowlists.  Measured durations feed reporting only —
//! never a scheduling decision.

use std::time::Instant;

/// Runs `f` and returns its result plus the elapsed wall time in seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_the_closure_result_and_a_nonnegative_duration() {
        let (value, seconds) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }
}
