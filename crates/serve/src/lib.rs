//! `optima_serve` — a synchronous, deterministic-by-construction serving
//! engine for the quantized in-SRAM-multiplier DNN.
//!
//! The repo's inference substrate answers "how accurate and how fast is
//! one forward pass"; this crate answers the ROADMAP's serving question —
//! what throughput and tail latency the macro sustains when single-image
//! requests arrive as traffic.  The pipeline:
//!
//! 1. **Admission** — a bounded [`queue::RequestQueue`].  Capacity covers
//!    every admitted-but-incomplete request; exhaustion is a typed
//!    [`error::ServeError::QueueOverflow`] naming the capacity.
//!    Backpressure, never a silent drop.
//! 2. **Coalescing** — a batch closes at [`policy::BatchPolicy::max_batch`]
//!    requests or when its oldest member has waited
//!    [`policy::BatchPolicy::max_delay_us`], whichever comes first.
//!    Planning runs on a **virtual clock** ([`plan::Plan::build`]), so
//!    every batching decision is replayable and machine-independent.
//! 3. **Execution** — a [`pool::ShardPool`] of workers, one
//!    `KernelScratch` arena per shard, running the scratch-arena inference
//!    paths (`Network::infer_with` / `QuantizedNetwork::forward_with`).
//!    The warm steady state allocates nothing per request, and results are
//!    bit-identical to lone single-request calls at any shard count.
//! 4. **Reporting** — log2-bucketed [`histogram::LatencyHistogram`]s
//!    (rank-exact p50/p90/p99, mergeable across shards) over both the
//!    virtual timeline and the measured wall replay.
//!
//! Load comes from the deterministic open-/closed-loop generators in
//! [`load`], seeded through the same `stream_seed` discipline as the sweep
//! engine.  [`engine::ServingEngine`] ties the stages together.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod histogram;
pub mod load;
pub mod measure;
pub mod plan;
pub mod policy;
pub mod pool;
pub mod queue;

pub use engine::ServingEngine;
pub use error::ServeError;
pub use histogram::LatencyHistogram;
pub use load::LoadPattern;
pub use plan::{Plan, PlannedBatch, PlannedRequest, ServeConfig};
pub use policy::{BatchPolicy, ServiceModel};
pub use pool::{ShardPool, WallStats};
pub use queue::{Request, RequestQueue};
